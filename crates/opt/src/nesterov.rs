//! Nesterov's accelerated projected-gradient method — the paper's
//! **Algorithm 2** ("Nesterov's Projection Gradient Method").
//!
//! Minimizes a smooth convex function `G` over a convex set given only a
//! projection oracle. The Lipschitz constant `ω` is discovered by the
//! doubling line search of Algorithm 2 (line 6-13), the momentum sequence
//! is the classic `δ(t) = (1 + √(1+4δ(t−1)²))/2`, and the stopping rule is
//! the paper's `‖S − L(t)‖_F < χ` with `χ = numel · 10⁻¹²` (line 2).

use lrm_linalg::{ops, Matrix};

/// Configuration for [`nesterov_projected`].
#[derive(Debug, Clone)]
pub struct NesterovConfig {
    /// Hard cap on accelerated iterations.
    pub max_iters: usize,
    /// Per-entry stopping tolerance; the paper uses `10⁻¹²` scaled by the
    /// number of entries (Algorithm 2, line 2).
    pub tol_per_entry: f64,
    /// Initial Lipschitz estimate `ω(0)`; the paper uses 1.
    pub initial_lipschitz: f64,
    /// Cap on doubling steps inside one line search.
    pub max_backtracks: usize,
}

impl Default for NesterovConfig {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tol_per_entry: 1e-12,
            initial_lipschitz: 1.0,
            max_backtracks: 60,
        }
    }
}

/// Outcome of a [`nesterov_projected`] run.
#[derive(Debug, Clone)]
pub struct NesterovResult {
    /// The final (feasible) iterate.
    pub x: Matrix,
    /// Objective value at the final iterate.
    pub objective: f64,
    /// Accelerated iterations performed.
    pub iterations: usize,
    /// Whether the `‖S − L‖_F < χ` criterion fired (as opposed to the
    /// iteration cap).
    pub converged: bool,
    /// Final Lipschitz estimate (useful as a warm start for the next call).
    pub lipschitz: f64,
}

/// Runs Algorithm 2 of the paper.
///
/// * `objective` — smooth convex `G`;
/// * `gradient` — `∇G`;
/// * `project` — in-place Euclidean projection onto the feasible set;
/// * `x0` — starting point (projected before use).
pub fn nesterov_projected(
    objective: impl Fn(&Matrix) -> f64,
    gradient: impl Fn(&Matrix) -> Matrix,
    project: impl Fn(&mut Matrix),
    x0: Matrix,
    cfg: &NesterovConfig,
) -> NesterovResult {
    let numel = (x0.rows() * x0.cols()) as f64;
    let chi = numel * cfg.tol_per_entry;

    let mut x_prev = {
        let mut x = x0;
        project(&mut x);
        x
    };
    let mut x_curr = x_prev.clone();
    let mut omega = cfg.initial_lipschitz.max(f64::MIN_POSITIVE);
    let mut delta_prev = 0.0_f64; // δ(t−2)
    let mut delta_curr = 1.0_f64; // δ(t−1)

    for t in 1..=cfg.max_iters {
        // Cooperative compile deadline: return the current (feasible)
        // iterate early — a truncated inner solve is just a looser
        // inexact step for the ALM outer loop, which aborts itself.
        if crate::deadline::expired() {
            return NesterovResult {
                objective: objective(&x_curr),
                x: x_curr,
                iterations: t - 1,
                converged: false,
                lipschitz: omega,
            };
        }
        // Extrapolation point S = L(t) + α (L(t) − L(t−1)).
        let alpha = (delta_prev - 1.0) / delta_curr;
        let mut s = x_curr.clone();
        if t > 1 && alpha != 0.0 {
            let diff = &x_curr - &x_prev;
            s.axpy(alpha, &diff).expect("shapes agree");
        }
        let g_s = gradient(&s);
        let f_s = objective(&s);

        // Backtracking: find ω with G(U) ≤ G(S) + ⟨∇G(S), U−S⟩ + ω/2 ‖U−S‖².
        let mut accepted: Option<(Matrix, f64)> = None;
        let mut omega_try = omega;
        for _ in 0..cfg.max_backtracks {
            let mut u = s.clone();
            u.axpy(-1.0 / omega_try, &g_s).expect("shapes agree");
            project(&mut u);

            let step = &u - &s;
            let step_norm = step.frobenius_norm();
            if step_norm < chi {
                // Paper's convergence test (Algorithm 2, line 9-10).
                return NesterovResult {
                    objective: objective(&u),
                    x: u,
                    iterations: t,
                    converged: true,
                    lipschitz: omega_try,
                };
            }
            let f_u = objective(&u);
            let quad = f_s
                + ops::frob_inner(&g_s, &step).expect("shapes agree")
                + 0.5 * omega_try * step_norm * step_norm;
            if f_u <= quad + 1e-12 * quad.abs().max(1.0) {
                accepted = Some((u, f_u));
                break;
            }
            omega_try *= 2.0;
        }
        let (x_new, _f_new) = accepted.unwrap_or_else(|| {
            // Line search exhausted; take the last (tiny) step anyway.
            let mut u = s.clone();
            u.axpy(-1.0 / omega_try, &g_s).expect("shapes agree");
            project(&mut u);
            let f = objective(&u);
            (u, f)
        });
        omega = omega_try;

        x_prev = std::mem::replace(&mut x_curr, x_new);
        let delta_next = 0.5 * (1.0 + (1.0 + 4.0 * delta_curr * delta_curr).sqrt());
        delta_prev = delta_curr;
        delta_curr = delta_next;
    }

    NesterovResult {
        objective: objective(&x_curr),
        x: x_curr,
        iterations: cfg.max_iters,
        converged: false,
        lipschitz: omega,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l1::project_columns_l1;

    /// Unconstrained quadratic: G(x) = ½‖x − c‖².
    #[test]
    fn converges_to_unconstrained_minimum() {
        let c = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let res = nesterov_projected(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |_x| {},
            Matrix::zeros(2, 2),
            &NesterovConfig::default(),
        );
        assert!(res.converged);
        assert!(res.x.approx_eq(&c, 1e-6), "got {:?}", res.x);
    }

    /// Constrained: minimize ½‖x − c‖² over per-column L1 balls. The
    /// solution is exactly the column-wise projection of c.
    #[test]
    fn converges_to_projection_under_l1_constraint() {
        let c = Matrix::from_rows(&[&[2.0, 0.2], &[-2.0, 0.1]]);
        let mut expected = c.clone();
        project_columns_l1(&mut expected, 1.0);

        let res = nesterov_projected(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |x| {
                project_columns_l1(x, 1.0);
            },
            Matrix::zeros(2, 2),
            &NesterovConfig::default(),
        );
        assert!(res.x.approx_eq(&expected, 1e-6));
        // Feasibility of the result.
        assert!(res.x.max_col_abs_sum() <= 1.0 + 1e-9);
    }

    /// Ill-conditioned quadratic — the backtracking search must discover a
    /// much larger Lipschitz constant than the initial guess.
    #[test]
    fn line_search_finds_lipschitz_constant() {
        // G(x) = ½ xᵀ D x with D = diag(1, 1000).
        let d = [1.0, 1000.0];
        let res = nesterov_projected(
            |x| 0.5 * (d[0] * x.get(0, 0).powi(2) + d[1] * x.get(1, 0).powi(2)),
            |x| Matrix::from_rows(&[&[d[0] * x.get(0, 0)], &[d[1] * x.get(1, 0)]]),
            |_x| {},
            Matrix::from_rows(&[&[1.0], &[1.0]]),
            &NesterovConfig {
                max_iters: 2000,
                ..NesterovConfig::default()
            },
        );
        assert!(res.lipschitz >= 500.0, "ω = {}", res.lipschitz);
        // FISTA's O(L/t²) guarantee gives ~1e-3 here; it does much better
        // in practice but full 1e-8 accuracy is not guaranteed.
        assert!(res.objective < 1e-4, "objective = {}", res.objective);
    }

    /// The objective never increases much across accepted iterations
    /// (FISTA is not strictly monotone, but must descend overall).
    #[test]
    fn overall_descent() {
        let c = Matrix::from_fn(4, 6, |i, j| ((i * 6 + j) as f64 * 0.37).sin() * 3.0);
        let f0 = 0.5 * c.squared_sum(); // objective at x0 = 0
        let res = nesterov_projected(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |x| {
                project_columns_l1(x, 0.5);
            },
            Matrix::zeros(4, 6),
            &NesterovConfig::default(),
        );
        assert!(res.objective <= f0);
        assert!(res.x.max_col_abs_sum() <= 0.5 + 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        // Ill-conditioned so that three iterations cannot possibly converge.
        let d = [1.0, 1000.0];
        let res = nesterov_projected(
            |x| 0.5 * (d[0] * x.get(0, 0).powi(2) + d[1] * x.get(1, 0).powi(2)),
            |x| Matrix::from_rows(&[&[d[0] * x.get(0, 0)], &[d[1] * x.get(1, 0)]]),
            |_x| {},
            Matrix::filled(2, 1, 1.0),
            &NesterovConfig {
                max_iters: 3,
                ..NesterovConfig::default()
            },
        );
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }
}
