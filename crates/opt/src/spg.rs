//! Nonmonotone spectral projected gradient (SPG) method of Birgin,
//! Martínez & Raydan (SIAM J. Optim. 2000) — the paper's ref \[2\], used in
//! **Appendix B** to minimize the smoothed Matrix Mechanism objective over
//! the positive-definite cone.
//!
//! The method combines Barzilai–Borwein spectral step lengths with the
//! nonmonotone Grippo–Lampariello–Lucidi line search (accept when the new
//! value improves on the *maximum* of the last `memory` objective values).

use lrm_linalg::{ops, Matrix};

/// Configuration for [`spg_minimize`].
#[derive(Debug, Clone)]
pub struct SpgConfig {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the projected-gradient step has Frobenius norm below this.
    pub tol: f64,
    /// Nonmonotone memory (the classic choice is 10).
    pub memory: usize,
    /// Armijo sufficient-decrease parameter.
    pub gamma: f64,
    /// Spectral step clamping range.
    pub lambda_min: f64,
    /// Spectral step clamping range.
    pub lambda_max: f64,
    /// Cap on backtracking halvings inside one line search.
    pub max_backtracks: usize,
}

impl Default for SpgConfig {
    fn default() -> Self {
        Self {
            max_iters: 300,
            tol: 1e-8,
            memory: 10,
            gamma: 1e-4,
            lambda_min: 1e-10,
            lambda_max: 1e10,
            max_backtracks: 50,
        }
    }
}

/// Outcome of an SPG run.
#[derive(Debug, Clone)]
pub struct SpgResult {
    /// Final iterate (always feasible).
    pub x: Matrix,
    /// Objective at the final iterate.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the projected-gradient criterion fired.
    pub converged: bool,
}

/// Minimizes `f` over a convex set given an in-place projection oracle.
///
/// `x0` is projected before use. `f` and `grad` are evaluated only at
/// feasible points.
pub fn spg_minimize(
    f: impl Fn(&Matrix) -> f64,
    grad: impl Fn(&Matrix) -> Matrix,
    project: impl Fn(&mut Matrix),
    x0: Matrix,
    cfg: &SpgConfig,
) -> SpgResult {
    let mut x = x0;
    project(&mut x);
    let mut fx = f(&x);
    let mut g = grad(&x);

    // Initial spectral step: 1/‖P(x − g) − x‖∞-ish; simple robust choice.
    let mut lambda = {
        let gn = g.frobenius_norm();
        if gn > 0.0 {
            (1.0 / gn).clamp(cfg.lambda_min, cfg.lambda_max)
        } else {
            1.0
        }
    };

    let mut history = std::collections::VecDeque::with_capacity(cfg.memory);
    history.push_back(fx);

    for iter in 1..=cfg.max_iters {
        // Projected-gradient direction d = P(x − λ g) − x.
        let mut trial = x.clone();
        trial.axpy(-lambda, &g).expect("shapes agree");
        project(&mut trial);
        let d = &trial - &x;
        let d_norm = d.frobenius_norm();
        if d_norm <= cfg.tol {
            return SpgResult {
                x,
                objective: fx,
                iterations: iter,
                converged: true,
            };
        }

        let gd = ops::frob_inner(&g, &d).expect("shapes agree");
        let f_max = history.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Nonmonotone backtracking along x + α d, α ∈ (0, 1].
        let mut alpha = 1.0;
        let mut x_new;
        let mut f_new;
        let mut backtracks = 0;
        loop {
            x_new = x.clone();
            x_new.axpy(alpha, &d).expect("shapes agree");
            // The segment between two feasible points stays feasible for a
            // convex set, so no re-projection is needed.
            f_new = f(&x_new);
            if f_new <= f_max + cfg.gamma * alpha * gd || backtracks >= cfg.max_backtracks {
                break;
            }
            // Safeguarded quadratic interpolation.
            let denom = 2.0 * (f_new - fx - alpha * gd);
            let alpha_q = if denom > 0.0 {
                -gd * alpha * alpha / denom
            } else {
                alpha / 2.0
            };
            alpha = alpha_q.clamp(0.1 * alpha, 0.9 * alpha);
            backtracks += 1;
        }

        let g_new = grad(&x_new);
        // Spectral (Barzilai–Borwein) step update.
        let s = &x_new - &x;
        let y = &g_new - &g;
        let sts = s.squared_sum();
        let sty = ops::frob_inner(&s, &y).expect("shapes agree");
        lambda = if sty > 0.0 {
            (sts / sty).clamp(cfg.lambda_min, cfg.lambda_max)
        } else {
            cfg.lambda_max
        };

        x = x_new;
        fx = f_new;
        g = g_new;
        if history.len() == cfg.memory {
            history.pop_front();
        }
        history.push_back(fx);
    }

    SpgResult {
        x,
        objective: fx,
        iterations: cfg.max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Box-constrained quadratic with the unconstrained optimum outside
    /// the box: the solution clips to the boundary.
    #[test]
    fn box_constrained_quadratic() {
        let c = Matrix::from_rows(&[&[3.0], &[-0.5]]);
        let res = spg_minimize(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |x| {
                for v in x.as_mut_slice() {
                    *v = v.clamp(-1.0, 1.0);
                }
            },
            Matrix::zeros(2, 1),
            &SpgConfig::default(),
        );
        assert!(res.converged);
        assert!((res.x.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((res.x.get(1, 0) + 0.5).abs() < 1e-6);
    }

    /// Unconstrained ill-conditioned quadratic: BB steps handle the
    /// curvature spread far better than fixed-step gradient descent.
    #[test]
    fn ill_conditioned_quadratic() {
        let diag = [1.0, 100.0, 10000.0];
        let res = spg_minimize(
            |x| 0.5 * (0..3).map(|i| diag[i] * x.get(i, 0).powi(2)).sum::<f64>(),
            |x| Matrix::from_fn(3, 1, |i, _| diag[i] * x.get(i, 0)),
            |_x| {},
            Matrix::filled(3, 1, 1.0),
            &SpgConfig {
                max_iters: 500,
                tol: 1e-10,
                ..SpgConfig::default()
            },
        );
        assert!(res.objective < 1e-12, "objective {}", res.objective);
    }

    /// Nonmonotone acceptance: the method still terminates at the optimum
    /// on a Rosenbrock-like nonconvex surface (local convergence only).
    #[test]
    fn rosenbrock_descent() {
        let f = |x: &Matrix| {
            let (a, b) = (x.get(0, 0), x.get(1, 0));
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let grad = |x: &Matrix| {
            let (a, b) = (x.get(0, 0), x.get(1, 0));
            Matrix::from_rows(&[
                &[-2.0 * (1.0 - a) - 400.0 * a * (b - a * a)],
                &[200.0 * (b - a * a)],
            ])
        };
        let res = spg_minimize(
            f,
            grad,
            |_x| {},
            Matrix::from_rows(&[&[-1.2], &[1.0]]),
            &SpgConfig {
                max_iters: 20_000,
                tol: 1e-10,
                ..SpgConfig::default()
            },
        );
        assert!(res.objective < 1e-8, "objective {}", res.objective);
    }

    #[test]
    fn already_optimal_exits_immediately() {
        let res = spg_minimize(
            |x| 0.5 * x.squared_sum(),
            |x| x.clone(),
            |_x| {},
            Matrix::zeros(2, 2),
            &SpgConfig::default(),
        );
        assert!(res.converged);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn respects_iteration_cap() {
        let c = Matrix::filled(2, 2, 1.0);
        let res = spg_minimize(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |_x| {},
            Matrix::zeros(2, 2),
            &SpgConfig {
                max_iters: 2,
                tol: 0.0,
                ..SpgConfig::default()
            },
        );
        assert_eq!(res.iterations, 2);
        assert!(!res.converged);
    }
}
