//! Log-sum-exp smoothing of the max function — paper **Appendix B**.
//!
//! The Matrix Mechanism objective contains `max(diag(M))`, which is
//! non-smooth. Following the paper (after d'Aspremont et al., ref \[7\]),
//! we replace it with
//!
//! ```text
//! f_μ(v) = μ · log Σ_i exp(v_i / μ)
//! ```
//!
//! which satisfies `max(v) ≤ f_μ(v) ≤ max(v) + μ·log n` and has a
//! Lipschitz-continuous gradient with constant `1/μ`. Setting
//! `μ = ε̂ / log n` yields a uniform `ε̂`-approximation. Both the value and
//! the gradient use the shift-by-max trick spelled out at the end of
//! Appendix B to avoid overflow.

/// Smoothed maximum with accuracy parameter `μ`.
#[derive(Debug, Clone, Copy)]
pub struct SmoothMax {
    mu: f64,
}

impl SmoothMax {
    /// Creates a smoother with parameter `μ > 0`.
    ///
    /// # Panics
    /// Panics when `μ` is not strictly positive and finite.
    pub fn new(mu: f64) -> Self {
        assert!(mu > 0.0 && mu.is_finite(), "μ must be positive, got {mu}");
        Self { mu }
    }

    /// Chooses `μ = accuracy / log n` so that `f_μ` uniformly
    /// `accuracy`-approximates `max` over vectors of length `n`
    /// (Appendix B).
    pub fn with_accuracy(accuracy: f64, n: usize) -> Self {
        assert!(n >= 1, "need at least one coordinate");
        let log_n = (n.max(2) as f64).ln();
        Self::new(accuracy / log_n)
    }

    /// The smoothing parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// `f_μ(v) = max(v) + μ·log Σ exp((v_i − max(v))/μ)`.
    pub fn value(&self, v: &[f64]) -> f64 {
        assert!(!v.is_empty(), "SmoothMax of an empty vector");
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = v.iter().map(|&x| ((x - max) / self.mu).exp()).sum();
        max + self.mu * sum.ln()
    }

    /// Gradient: `∂f/∂v_i = (Σ_j exp((v_j − v_i)/μ))⁻¹`, computed via the
    /// softmax-with-shift formulation (Appendix B, final display).
    pub fn gradient(&self, v: &[f64]) -> Vec<f64> {
        assert!(!v.is_empty(), "SmoothMax gradient of an empty vector");
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = v.iter().map(|&x| ((x - max) / self.mu).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_from_appendix_b() {
        // max(v) ≤ f_μ(v) ≤ max(v) + μ log n.
        let v = [1.0, 3.0, -2.0, 2.9];
        for &mu in &[1.0, 0.1, 0.01] {
            let sm = SmoothMax::new(mu);
            let f = sm.value(&v);
            assert!(f >= 3.0 - 1e-12);
            assert!(f <= 3.0 + mu * (v.len() as f64).ln() + 1e-12);
        }
    }

    #[test]
    fn uniform_accuracy_constructor() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let target = 0.05;
        let sm = SmoothMax::with_accuracy(target, v.len());
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((sm.value(&v) - max).abs() <= target + 1e-12);
    }

    #[test]
    fn gradient_is_softmax_simplex_point() {
        let v = [0.5, 2.0, 1.0];
        let sm = SmoothMax::new(0.3);
        let g = sm.gradient(&v);
        let sum: f64 = g.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(g.iter().all(|&x| x >= 0.0));
        // The max coordinate dominates.
        assert!(g[1] > g[2] && g[2] > g[0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let v = [1.0, -0.5, 0.8, 0.2];
        let sm = SmoothMax::new(0.25);
        let g = sm.gradient(&v);
        let h = 1e-6;
        for i in 0..v.len() {
            let mut vp = v;
            vp[i] += h;
            let mut vm = v;
            vm[i] -= h;
            let fd = (sm.value(&vp) - sm.value(&vm)) / (2.0 * h);
            assert!(
                (g[i] - fd).abs() < 1e-6,
                "coordinate {i}: analytic {} vs fd {fd}",
                g[i]
            );
        }
    }

    #[test]
    fn no_overflow_on_large_values() {
        let v = [1e8, 1e8 - 1.0];
        let sm = SmoothMax::new(0.01);
        let f = sm.value(&v);
        assert!(f.is_finite());
        assert!((f - 1e8).abs() < 1.0);
        let g = sm.gradient(&v);
        assert!(g.iter().all(|x| x.is_finite()));
        assert!((g[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tie_splits_evenly() {
        let sm = SmoothMax::new(0.5);
        let g = sm.gradient(&[2.0, 2.0]);
        assert!((g[0] - 0.5).abs() < 1e-12);
        assert!((g[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "μ must be positive")]
    fn rejects_bad_mu() {
        SmoothMax::new(0.0);
    }
}
