//! Cooperative compile deadlines for the iterative solvers.
//!
//! The serving runtime needs bounded-latency compiles: an ALM run that
//! blows its per-batch budget must be *abandoned*, not awaited. Threading
//! a deadline parameter through every solver signature (and through the
//! engine's cache digest, where it must NOT appear — a deadline is an
//! execution constraint, not part of the strategy identity) would touch
//! a dozen APIs; instead the deadline is a thread-local token scoped by
//! [`with_deadline`], and the inner loops poll [`expired`] once per
//! (expensive) iteration:
//!
//! * the ALM outer loop (`lrm_core::decomposition`) aborts with a typed
//!   error, leaving the caller to fall back to a non-iterative strategy;
//! * Nesterov's inner loop ([`crate::nesterov`]) returns its current
//!   iterate early — a truncated inner solve is just a looser inexact
//!   step for the outer loop to absorb.
//!
//! The token is cooperative: a stalled *non-iterating* computation (one
//! giant GEMM) is not interrupted. Poll frequency is one `Instant::now`
//! per iteration, noise against the GEMMs each iteration performs.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// A compile deadline: either unbounded or a wall-clock instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline — [`expired`] is always `false`.
    pub fn none() -> Self {
        Deadline(None)
    }

    /// Deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline(Some(Instant::now() + budget))
    }

    /// Deadline at a specific instant.
    pub fn at(instant: Instant) -> Self {
        Deadline(Some(instant))
    }

    /// Whether this deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }
}

thread_local! {
    static CURRENT: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Restores the previous thread-local deadline even if `f` panics or
/// returns early via `?`.
struct Restore(Option<Instant>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.0));
    }
}

/// Runs `f` with `deadline` installed as the calling thread's compile
/// deadline; the previous deadline (if any) is restored afterwards,
/// including on panic. Nested scopes keep the *tighter* constraint: an
/// outer deadline is not loosened by an inner `Deadline::none()`.
pub fn with_deadline<R>(deadline: Deadline, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.get());
    let effective = match (prev, deadline.0) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let _restore = Restore(prev);
    CURRENT.with(|c| c.set(effective));
    f()
}

/// Whether the calling thread's current compile deadline (if any) has
/// passed. Cheap enough to poll once per solver iteration.
pub fn expired() -> bool {
    CURRENT
        .with(|c| c.get())
        .is_some_and(|t| Instant::now() >= t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_never_expires() {
        assert!(!expired());
        with_deadline(Deadline::none(), || assert!(!expired()));
    }

    #[test]
    fn elapsed_deadline_expires_and_scope_restores() {
        with_deadline(Deadline::at(Instant::now()), || {
            assert!(expired());
        });
        assert!(!expired());
    }

    #[test]
    fn nested_scopes_keep_the_tighter_deadline() {
        with_deadline(Deadline::at(Instant::now()), || {
            // An inner, looser scope must not mask the expired outer one.
            with_deadline(Deadline::after(Duration::from_secs(3600)), || {
                assert!(expired());
            });
            with_deadline(Deadline::none(), || assert!(expired()));
            assert!(expired());
        });
    }

    #[test]
    fn restore_survives_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_deadline(Deadline::at(Instant::now()), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!expired());
    }
}
