//! Per-iteration solver telemetry, scoped like [`crate::deadline`].
//!
//! The serving runtime wants an ALM convergence record per compile
//! (iteration count, residual trajectory, penalty growth) without
//! threading a callback parameter through every solver signature — and
//! without `lrm-opt` depending on any tracing crate. So the observer is
//! a thread-local token scoped by [`with_observer`]: the ALM outer loop
//! (`lrm_core::decomposition`) calls [`observe`] once per outer
//! iteration, which is a no-op unless the calling thread is inside a
//! scope. The runtime installs an observer that forwards to its tracing
//! layer; everyone else pays one thread-local read per iteration.
//!
//! The payload is **data-independent by construction**: `residual` is
//! τ = ‖W − BL‖_F, a property of the workload decomposition alone —
//! never of the data vector. Do not extend this struct with anything
//! derived from query answers; see the DP invariant documented in
//! `lrm-obs`.

use std::cell::RefCell;
use std::rc::Rc;

/// One ALM outer iteration, as reported by the decomposition loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlmIteration {
    /// Outer iterations completed so far (1-based on first call).
    pub outer: usize,
    /// Factorization residual τ = ‖W − BL‖_F after this iteration —
    /// workload-only, data-independent.
    pub residual: f64,
    /// Current augmented-Lagrangian penalty β.
    pub beta: f64,
}

/// The observer callback type: called once per completed outer
/// iteration on the solving thread.
pub type Observer = Rc<dyn Fn(AlmIteration)>;

thread_local! {
    static CURRENT: RefCell<Option<Observer>> = const { RefCell::new(None) };
}

/// Restores the previous observer even if `f` panics or returns early.
struct Restore(Option<Observer>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `observer` installed as the calling thread's solver
/// observer; the previous observer (if any) is restored afterwards,
/// including on panic. Unlike deadlines, nesting *replaces*: the
/// innermost scope owns the iteration stream.
pub fn with_observer<R>(observer: Observer, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(observer));
    let _restore = Restore(prev);
    f()
}

/// Whether the calling thread has an observer installed. Lets solvers
/// skip computing telemetry-only values.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Reports one completed outer iteration to the thread's observer, if
/// any. The observer is cloned out of the slot before the call, so an
/// observer that itself triggers a nested solve cannot alias the
/// `RefCell` borrow.
pub fn observe(iteration: AlmIteration) {
    let observer = CURRENT.with(|c| c.borrow().clone());
    if let Some(observer) = observer {
        observer(iteration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn observe_is_inert_without_a_scope() {
        assert!(!active());
        observe(AlmIteration {
            outer: 1,
            residual: 0.5,
            beta: 1.0,
        });
    }

    #[test]
    fn scoped_observer_sees_iterations_and_restores() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        with_observer(
            Rc::new(move |it: AlmIteration| sink.borrow_mut().push(it)),
            || {
                assert!(active());
                observe(AlmIteration {
                    outer: 1,
                    residual: 2.0,
                    beta: 1.0,
                });
                observe(AlmIteration {
                    outer: 2,
                    residual: 1.0,
                    beta: 2.0,
                });
            },
        );
        assert!(!active());
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].outer, 1);
        assert_eq!(seen[1].residual, 1.0);
    }

    #[test]
    fn inner_scope_replaces_and_outer_comes_back() {
        let outer_hits = Rc::new(Cell::new(0));
        let inner_hits = Rc::new(Cell::new(0));
        let (o, i) = (outer_hits.clone(), inner_hits.clone());
        let tick = AlmIteration {
            outer: 1,
            residual: 0.0,
            beta: 1.0,
        };
        with_observer(Rc::new(move |_| o.set(o.get() + 1)), || {
            observe(tick);
            with_observer(Rc::new(move |_| i.set(i.get() + 1)), || observe(tick));
            observe(tick);
        });
        assert_eq!(outer_hits.get(), 2);
        assert_eq!(inner_hits.get(), 1);
    }

    #[test]
    fn restore_survives_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_observer(Rc::new(|_| {}), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!active());
    }
}
