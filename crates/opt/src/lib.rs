#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numerical kernels

//! Optimization routines for the Low-Rank Mechanism reproduction.
//!
//! Every routine here exists because the paper calls for it:
//!
//! * [`l1`] — Euclidean projection onto the L1 ball (Duchi et al., paper
//!   ref \[10\]); Formula (11) of the paper decouples into one such
//!   projection per column of `L`.
//! * [`l2`] — Euclidean projection onto the L2 ball (a radial rescale),
//!   the constraint set of the approximate-DP (Gaussian) decomposition
//!   where column L2 norms bound the sensitivity.
//! * [`nesterov`] — Nesterov's accelerated projected-gradient method with
//!   backtracking Lipschitz search, i.e. the paper's **Algorithm 2**.
//! * [`alm`] — penalty/multiplier scheduling for the inexact Augmented
//!   Lagrangian method of the paper's **Algorithm 1** (refs \[5, 18\]).
//! * [`spg`] — the nonmonotone spectral projected gradient method of
//!   Birgin, Martínez & Raydan (paper ref \[2\]), used by the Matrix
//!   Mechanism implementation in **Appendix B**.
//! * [`lse`] — log-sum-exp smoothing of `max(·)` with the numerically
//!   robust gradient from **Appendix B** (after d'Aspremont et al., ref
//!   \[7\]).
//! * [`deadline`] — cooperative compile deadlines: a thread-local token
//!   the iterative solvers poll once per iteration, so a serving runtime
//!   can abandon an over-budget compile without threading a deadline
//!   parameter through every solver signature.
//! * [`warm`] — warm-start seeds for Algorithm 1: a cached `(B, L)`
//!   decomposition re-projected onto a (possibly different) target rank
//!   replaces the Lemma 3 SVD initializer when a similar workload has
//!   already been solved.
//! * [`telemetry`] — per-iteration solver telemetry: a thread-local
//!   observer (same scoping pattern as [`deadline`]) the ALM outer loop
//!   reports each iteration's data-independent convergence state to, so
//!   a tracing layer can record solver behavior without `lrm-opt`
//!   depending on one.

pub mod alm;
pub mod deadline;
pub mod l1;
pub mod l2;
pub mod lse;
pub mod nesterov;
pub mod spg;
pub mod telemetry;
pub mod warm;

pub use alm::{AlmSchedule, AlmState};
pub use deadline::Deadline;
pub use l1::{project_columns_l1, project_l1_ball};
pub use l2::{project_columns_l2, project_l2_ball};
pub use lse::SmoothMax;
pub use nesterov::{nesterov_projected, NesterovConfig, NesterovResult};
pub use spg::{spg_minimize, SpgConfig, SpgResult};
pub use telemetry::AlmIteration;
pub use warm::WarmStart;
