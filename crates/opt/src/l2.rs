//! Euclidean projection onto the L2 ball.
//!
//! The approximate-DP variant of the decomposition constrains every
//! column of `L` by its **Euclidean** norm (`∀j ‖L_:j‖₂ ≤ 1`), because
//! the Gaussian mechanism's noise is calibrated against L2 sensitivity
//! (journal extension of the paper, arXiv:1502.07526). Unlike the L1
//! case there is no sorting involved: the projection onto an L2 ball is
//! a pure radial rescale, `O(r)` per column.

use lrm_linalg::Matrix;

/// Projects `v` in place onto the L2 ball of the given `radius`:
/// `argmin_w ‖w − v‖₂ s.t. ‖w‖₂ ≤ radius` — i.e. rescale by
/// `radius/‖v‖₂` when infeasible.
///
/// Returns `true` when the input was already feasible (no change made).
///
/// # Panics
/// Panics if `radius` is negative or NaN.
pub fn project_l2_ball(v: &mut [f64], radius: f64) -> bool {
    assert!(
        radius >= 0.0 && radius.is_finite(),
        "L2 ball radius must be non-negative and finite, got {radius}"
    );
    let norm2: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm2 <= radius {
        return true;
    }
    if radius == 0.0 {
        v.iter_mut().for_each(|x| *x = 0.0);
        return false;
    }
    let scale = radius / norm2;
    v.iter_mut().for_each(|x| *x *= scale);
    false
}

/// Projects every **column** of `l` onto the L2 ball of the given
/// radius — the constraint set of the approximate-DP decomposition
/// (the L2 twin of [`crate::l1::project_columns_l1`]).
///
/// Returns the number of columns that required projection.
pub fn project_columns_l2(l: &mut Matrix, radius: f64) -> usize {
    let (rows, cols) = l.shape();
    let mut col_buf = vec![0.0; rows];
    let mut projected = 0;
    for j in 0..cols {
        for i in 0..rows {
            col_buf[i] = l.get(i, j);
        }
        if !project_l2_ball(&mut col_buf, radius) {
            projected += 1;
            l.set_col(j, &col_buf);
        }
    }
    projected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm2(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn feasible_point_untouched() {
        let mut v = vec![0.3, -0.4, 0.5];
        let orig = v.clone();
        assert!(project_l2_ball(&mut v, 1.0));
        assert_eq!(v, orig);
    }

    #[test]
    fn projection_lands_on_boundary_preserving_direction() {
        let mut v = vec![3.0, -4.0];
        assert!(!project_l2_ball(&mut v, 1.0));
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        // Direction preserved: (3, -4)/5 = (0.6, -0.8).
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] + 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_zeroes_vector() {
        let mut v = vec![1.0, -2.0];
        project_l2_ball(&mut v, 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn idempotent() {
        let mut v = vec![4.0, -2.0, 7.0];
        project_l2_ball(&mut v, 1.5);
        let once = v.clone();
        assert!(project_l2_ball(&mut v, 1.5));
        assert_eq!(v, once);
    }

    #[test]
    fn l2_ball_contains_l1_ball() {
        // Any L1-feasible point is L2-feasible (‖·‖₂ ≤ ‖·‖₁), so the L2
        // projection must leave the L1 projection's output untouched.
        let mut v = vec![2.0, -3.0, 0.5, 1.0];
        crate::l1::project_l1_ball(&mut v, 1.0);
        assert!(project_l2_ball(&mut v, 1.0));
    }

    #[test]
    fn column_projection() {
        let mut l = Matrix::from_rows(&[&[3.0, 0.1], &[4.0, 0.2]]);
        let changed = project_columns_l2(&mut l, 1.0);
        assert_eq!(changed, 1); // only column 0 was infeasible
        let c0 = [l.get(0, 0), l.get(1, 0)];
        assert!((norm2(&c0) - 1.0).abs() < 1e-12);
        assert!((l.get(0, 1) - 0.1).abs() < 1e-15);
        assert!((l.get(1, 1) - 0.2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        let mut v = vec![1.0];
        project_l2_ball(&mut v, -1.0);
    }
}
