//! Warm-start seeding for the ALM solver of **Algorithm 1**.
//!
//! The Lemma 3 SVD construction is a fine *cold* initializer, but when a
//! near-duplicate workload has already been decomposed (the same
//! dashboard panel at 33 cuts vs 34), its `(B, L)` factors are a far
//! better starting point: the ALM outer loop spends most of its
//! iterations rediscovering structure the cached factors already carry.
//! This module holds the seed container and the **rank re-projection**
//! that lets a cached decomposition of nearby rank seed a different
//! target rank:
//!
//! * truncating keeps the `target_rank` directions with the largest
//!   contribution to `B·L` (measured as `‖b_i‖₂·‖l_i‖₂` per direction);
//! * padding appends low-amplitude deterministic fill rows — all-zero
//!   rows are stationary points of the alternating `B`/`L` updates, so
//!   zero padding would waste the extra rank;
//! * either way the columns of the result are re-projected onto the L1
//!   ball so the seed is feasible (`Δ(B, L) ≤ 1`) from iteration one.

use crate::l1::project_columns_l1;
use lrm_linalg::Matrix;

/// A warm-start initializer for Algorithm 1: the factors of a previously
/// computed decomposition, possibly for a *different* workload (and a
/// different query count `m`) over the same domain size `n`.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Seed `B` (`m_seed × r_seed`). Only usable directly when its shape
    /// matches the target problem exactly; otherwise the solver discards
    /// it and refits `B` from the re-projected `L` (the closed-form
    /// least-squares fit is the β→∞ limit of the paper's Eq. 9).
    pub b: Matrix,
    /// Seed `L` (`r_seed × n`). Must match the target domain size `n`.
    pub l: Matrix,
}

impl WarmStart {
    /// Wraps seed factors. Panics if the inner dimensions disagree — the
    /// pair must come from one decomposition.
    pub fn new(b: Matrix, l: Matrix) -> Self {
        assert_eq!(
            b.cols(),
            l.rows(),
            "warm-start factors must share an inner dimension"
        );
        Self { b, l }
    }

    /// Inner dimension `r_seed` of the seed.
    pub fn rank(&self) -> usize {
        self.l.rows()
    }

    /// Domain size `n` the seed was computed over.
    pub fn domain_size(&self) -> usize {
        self.l.cols()
    }

    /// Re-projects the seed `L` onto `target_rank` rows (see the
    /// [module docs](self) for the truncation/padding policy) and
    /// re-projects every column onto the unit L1 ball. The result is a
    /// feasible `target_rank × n` starting `L` for the pure ε-DP
    /// (Laplace, L1-sensitivity) decomposition.
    pub fn reproject_l(&self, target_rank: usize) -> Matrix {
        let mut l = self.reshape_rows(target_rank);
        project_columns_l1(&mut l, 1.0);
        l
    }

    /// The approximate-DP twin of [`WarmStart::reproject_l`]: same
    /// truncation/padding policy, but columns are projected onto the
    /// unit **L2** ball, producing a feasible start for the Gaussian
    /// (L2-sensitivity) decomposition. This is what lets an L1-optimized
    /// neighbor *seed* — never serve — an L2 compile: the factors carry
    /// over, the feasible set does not.
    pub fn reproject_l_l2(&self, target_rank: usize) -> Matrix {
        let mut l = self.reshape_rows(target_rank);
        crate::l2::project_columns_l2(&mut l, 1.0);
        l
    }

    /// Shared truncation/padding step: `target_rank` rows ordered by
    /// seed contribution, dead rows revived, no feasibility projection
    /// applied yet.
    fn reshape_rows(&self, target_rank: usize) -> Matrix {
        assert!(target_rank > 0, "target rank must be at least 1");
        let (r_seed, n) = self.l.shape();
        let mut l = Matrix::zeros(target_rank, n);

        // Rank directions ordered by their contribution to B·L:
        // ‖b_i·l_iᵀ‖_F = ‖b_i‖₂·‖l_i‖₂.
        let mut order: Vec<(f64, usize)> = (0..r_seed)
            .map(|i| {
                let l_norm: f64 = self.l.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
                let b_norm: f64 = self.b.col(i).iter().map(|v| v * v).sum::<f64>().sqrt();
                (l_norm * b_norm, i)
            })
            .collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let copied = r_seed.min(target_rank);
        for (dst, &(_, src)) in order.iter().take(copied).enumerate() {
            l.set_row(dst, self.l.row(src));
        }

        // Surplus rows (target_rank > r_seed) and dead copied rows get a
        // low-amplitude deterministic fill — the same LCG idiom as the
        // Lemma 3 surplus padding — so every direction is alive.
        let amp = 1.0 / (2.0 * (target_rank as f64) * (n as f64)).sqrt();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut fill = |row: &mut [f64]| {
            for v in row.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let unit = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                *v = amp * unit;
            }
        };
        for i in 0..target_rank {
            let dead = l.row(i).iter().all(|&v| v.abs() < 1e-300);
            if dead {
                fill(l.row_mut(i));
            }
        }

        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(m: usize, r: usize, n: usize) -> WarmStart {
        // Direction i has magnitude (r - i): importance order is 0, 1, …
        let b = Matrix::from_fn(m, r, |_, j| (r - j) as f64);
        let l = Matrix::from_fn(r, n, |i, j| {
            if j == i % n {
                (r - i) as f64 * 0.1
            } else {
                0.0
            }
        });
        WarmStart::new(b, l)
    }

    #[test]
    fn same_rank_round_trips_up_to_projection() {
        let s = seed(5, 3, 8);
        let l = s.reproject_l(3);
        assert_eq!(l.shape(), (3, 8));
        // Columns feasible.
        assert!(l.max_col_abs_sum() <= 1.0 + 1e-12);
    }

    #[test]
    fn truncation_keeps_the_heaviest_directions() {
        let s = seed(5, 4, 8);
        let l = s.reproject_l(2);
        assert_eq!(l.shape(), (2, 8));
        // Directions 0 and 1 carried the largest ‖b‖·‖l‖ products; their
        // support columns (0 and 1) must be the ones populated.
        assert!(l.get(0, 0).abs() > 0.0);
        assert!(l.get(1, 1).abs() > 0.0);
    }

    #[test]
    fn padding_fills_surplus_rows_with_live_directions() {
        let s = seed(5, 2, 8);
        let l = s.reproject_l(5);
        assert_eq!(l.shape(), (5, 8));
        for i in 0..5 {
            let row_mass: f64 = l.row(i).iter().map(|v| v.abs()).sum();
            assert!(row_mass > 0.0, "row {i} is dead");
        }
        assert!(l.max_col_abs_sum() <= 1.0 + 1e-12);
    }

    #[test]
    fn dead_seed_rows_are_revived() {
        let b = Matrix::filled(4, 3, 1.0);
        let mut l = Matrix::zeros(3, 6);
        l.set(0, 2, 0.5); // rows 1, 2 are dead
        let s = WarmStart::new(b, l);
        let out = s.reproject_l(3);
        for i in 0..3 {
            let row_mass: f64 = out.row(i).iter().map(|v| v.abs()).sum();
            assert!(row_mass > 0.0, "row {i} is dead");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn mismatched_factors_rejected() {
        let _ = WarmStart::new(Matrix::zeros(4, 3), Matrix::zeros(2, 6));
    }

    #[test]
    fn l2_reprojection_is_l2_feasible() {
        // A seed with L1-feasible but L2-infeasible columns would be
        // pathological; the realistic case is an L1 seed whose columns
        // are already inside the (larger) L2 ball — but the method must
        // also repair columns that exceed it.
        let b = Matrix::filled(4, 2, 1.0);
        let l = Matrix::from_rows(&[&[3.0, 0.1, 0.0], &[4.0, 0.0, 0.2]]);
        let s = WarmStart::new(b, l);
        let out = s.reproject_l_l2(2);
        assert_eq!(out.shape(), (2, 3));
        for j in 0..3 {
            let col_norm: f64 = (0..2).map(|i| out.get(i, j).powi(2)).sum::<f64>().sqrt();
            assert!(col_norm <= 1.0 + 1e-12, "column {j} L2-infeasible");
        }
        // Every direction alive.
        for i in 0..2 {
            assert!(out.row(i).iter().any(|&v| v.abs() > 0.0), "row {i} dead");
        }
    }

    #[test]
    fn l1_seed_carries_into_l2_untouched() {
        // An L1-feasible seed is automatically L2-feasible, so the
        // cross-flavor reprojection should keep its values exactly —
        // this is what makes cross-flavor seeding worthwhile.
        let s = seed(5, 3, 8);
        let l1_out = s.reproject_l(3);
        let carried = WarmStart::new(Matrix::filled(5, 3, 1.0), l1_out.clone());
        let l2_out = carried.reproject_l_l2(3);
        for i in 0..3 {
            for j in 0..8 {
                assert_eq!(l1_out.get(i, j), l2_out.get(i, j));
            }
        }
    }
}
