#![warn(missing_docs)]
//! Benchmark-only crate; see the `benches/` directory.
