//! Compile- and answer-latency benchmarks for every mechanism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_core::baselines::{
    HierarchicalMechanism, MatrixMechanism, MatrixMechanismConfig, NoiseOnData, NoiseOnResults,
    WaveletMechanism,
};
use lrm_core::decomposition::DecompositionConfig;
use lrm_core::{LowRankMechanism, Mechanism};
use lrm_dp::rng::derive_rng;
use lrm_dp::Epsilon;
use lrm_workload::generators::{WRange, WorkloadGenerator};
use lrm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn workload() -> Workload {
    WRange
        .generate(32, 128, &mut StdRng::seed_from_u64(1))
        .unwrap()
}

fn bench_compile(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    group.bench_function("LM", |b| b.iter(|| NoiseOnData::compile(black_box(&w))));
    group.bench_function("NOR", |b| b.iter(|| NoiseOnResults::compile(black_box(&w))));
    group.bench_function("WM", |b| {
        b.iter(|| WaveletMechanism::compile(black_box(&w)))
    });
    group.bench_function("HM", |b| {
        b.iter(|| HierarchicalMechanism::compile(black_box(&w)))
    });
    group.bench_function("MM", |b| {
        b.iter(|| MatrixMechanism::compile(black_box(&w), &MatrixMechanismConfig::default()))
    });
    group.bench_function("LRM", |b| {
        b.iter(|| LowRankMechanism::compile(black_box(&w), &DecompositionConfig::default()))
    });
    group.finish();
}

fn bench_answer(c: &mut Criterion) {
    let w = workload();
    let x: Vec<f64> = (0..w.domain_size()).map(|i| (i * 7 % 101) as f64).collect();
    let eps = Epsilon::new(0.1).unwrap();

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(NoiseOnData::compile(&w)),
        Box::new(WaveletMechanism::compile(&w)),
        Box::new(HierarchicalMechanism::compile(&w)),
        Box::new(LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap()),
    ];

    let mut group = c.benchmark_group("answer");
    for mech in &mechanisms {
        group.bench_with_input(BenchmarkId::from_parameter(mech.name()), mech, |b, mech| {
            let mut rng = derive_rng(1, 2);
            b.iter(|| mech.answer(black_box(&x), eps, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_answer);
criterion_main!(benches);
