//! Micro-benchmarks for the dense linear-algebra substrate: these kernels
//! dominate the LRM decomposition time the paper plots in Figs. 2–3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_linalg::decomp::{Cholesky, Svd, SymEigen};
use lrm_linalg::{ops, Matrix};
use std::hint::black_box;

fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = pseudo_random(n, n, 1);
        let b = pseudo_random(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

/// A/B input shapes for the dense-kernel zero-skip decision (see the
/// `matmul_block` doc comment in `lrm_linalg::ops`): a fully dense input,
/// a 0/1 range-workload input (~1/3 zeros runs), and a 5%-filled input.
/// The sparse inputs are ALSO run through `CsrOp`/`IntervalsOp` SpMM — the
/// structured path the zero-skip used to approximate inside the dense
/// kernel.
fn bench_matmul_sparsity(c: &mut Criterion) {
    use lrm_linalg::{CsrOp, MatrixOp};
    let n = 512usize;
    let dense = pseudo_random(n, n, 21);
    let rhs = pseudo_random(n, n, 22);
    let mut state: u64 = 23;
    let mut next = |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % bound
    };
    let mut range01 = Matrix::zeros(n, n);
    for i in 0..n {
        let a = next(n);
        let b = next(n);
        let (lo, hi) = (a.min(b), a.max(b));
        range01.row_mut(i)[lo..=hi]
            .iter_mut()
            .for_each(|v| *v = 1.0);
    }
    let sparse5 = pseudo_random(n, n, 24).map(|v| if v > 0.9 { v } else { 0.0 });

    let mut group = c.benchmark_group("matmul_sparsity");
    group.sample_size(10);
    for (label, a) in [
        ("dense", &dense),
        ("range01", &range01),
        ("sparse5pct", &sparse5),
    ] {
        group.bench_with_input(BenchmarkId::new("gemm", label), a, |bench, a| {
            bench.iter(|| ops::matmul(black_box(a), black_box(&rhs)).unwrap());
        });
    }
    for (label, a) in [("range01", &range01), ("sparse5pct", &sparse5)] {
        let csr = CsrOp::from_dense(a);
        group.bench_with_input(BenchmarkId::new("csr_spmm", label), &csr, |bench, csr| {
            bench.iter(|| csr.apply_right(black_box(&rhs)));
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for &(m, n) in &[(64usize, 128usize), (128, 256)] {
        let a = pseudo_random(m, n, 3);
        group.bench_with_input(
            BenchmarkId::new("jacobi", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| Svd::compute_jacobi(black_box(a)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("gram", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| Svd::compute_gram(black_box(a)).unwrap()),
        );
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let raw = pseudo_random(n, n, 4);
        let a = Matrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |bench, a| {
            bench.iter(|| SymEigen::compute(black_box(a)).unwrap());
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    for &n in &[64usize, 128, 256] {
        let b = pseudo_random(n, n, 5);
        let mut spd = ops::gram(&b);
        spd += &Matrix::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &spd, |bench, spd| {
            bench.iter(|| Cholesky::compute(black_box(spd)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_sparsity,
    bench_svd,
    bench_eigen,
    bench_cholesky
);
criterion_main!(benches);
