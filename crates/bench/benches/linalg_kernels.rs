//! Micro-benchmarks for the dense linear-algebra substrate: these kernels
//! dominate the LRM decomposition time the paper plots in Figs. 2–3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_linalg::decomp::{Cholesky, Svd, SymEigen};
use lrm_linalg::{ops, Matrix};
use std::hint::black_box;

fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = pseudo_random(n, n, 1);
        let b = pseudo_random(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for &(m, n) in &[(64usize, 128usize), (128, 256)] {
        let a = pseudo_random(m, n, 3);
        group.bench_with_input(
            BenchmarkId::new("jacobi", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| Svd::compute_jacobi(black_box(a)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("gram", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| Svd::compute_gram(black_box(a)).unwrap()),
        );
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let raw = pseudo_random(n, n, 4);
        let a = Matrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |bench, a| {
            bench.iter(|| SymEigen::compute(black_box(a)).unwrap());
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    for &n in &[64usize, 128, 256] {
        let b = pseudo_random(n, n, 5);
        let mut spd = ops::gram(&b);
        spd += &Matrix::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &spd, |bench, spd| {
            bench.iter(|| Cholesky::compute(black_box(spd)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_svd,
    bench_eigen,
    bench_cholesky
);
criterion_main!(benches);
