//! Benchmarks of the workload decomposition (Algorithm 1) — the quantity
//! behind the time curves of the paper's Figs. 2 and 3, plus the DESIGN.md
//! ablations (γ and r sensitivity of solve time, inner-solver budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
use lrm_workload::generators::{WRange, WRelated, WorkloadGenerator};
use lrm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn wrange(m: usize, n: usize) -> Workload {
    WRange
        .generate(m, n, &mut StdRng::seed_from_u64(1))
        .unwrap()
}

fn wrelated(m: usize, n: usize, s: usize) -> Workload {
    WRelated { base_queries: s }
        .generate(m, n, &mut StdRng::seed_from_u64(2))
        .unwrap()
}

/// Baseline decomposition cost by size (Fig. 2/3 time axis).
fn bench_decompose_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/size");
    group.sample_size(10);
    for &(m, n) in &[(16usize, 32usize), (32, 64)] {
        let w = wrange(m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &w,
            |bench, w| {
                bench.iter(|| {
                    WorkloadDecomposition::compute(black_box(w), &DecompositionConfig::default())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Fig. 2 ablation: γ's effect on solve time (larger γ → earlier stop).
fn bench_gamma(c: &mut Criterion) {
    let w = wrange(16, 32);
    let mut group = c.benchmark_group("decompose/gamma");
    group.sample_size(10);
    for &gamma in &[1e-4, 1e-2, 1.0] {
        let cfg = DecompositionConfig {
            gamma,
            ..DecompositionConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gamma:.0e}")),
            &cfg,
            |bench, cfg| {
                bench.iter(|| WorkloadDecomposition::compute(black_box(&w), cfg).unwrap());
            },
        );
    }
    group.finish();
}

/// Fig. 3 ablation: r's effect on solve time (search space grows with r).
fn bench_rank_ratio(c: &mut Criterion) {
    let w = wrelated(24, 48, 6);
    let mut group = c.benchmark_group("decompose/rank_ratio");
    group.sample_size(10);
    for &ratio in &[0.8, 1.2, 2.5] {
        let cfg = DecompositionConfig {
            target_rank: TargetRank::RatioOfRank(ratio),
            ..DecompositionConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ratio}")),
            &cfg,
            |bench, cfg| {
                bench.iter(|| WorkloadDecomposition::compute(black_box(&w), cfg).unwrap());
            },
        );
    }
    group.finish();
}

/// DESIGN.md ablation: the accelerated inner solver (Algorithm 2) vs a
/// deliberately starved budget (effectively plain projected-gradient).
fn bench_inner_solver(c: &mut Criterion) {
    let w = wrange(16, 32);
    let mut group = c.benchmark_group("decompose/inner_budget");
    group.sample_size(10);
    for &(label, iters) in &[("nesterov40", 40usize), ("nesterov5", 5)] {
        let cfg = DecompositionConfig {
            nesterov: lrm_opt::NesterovConfig {
                max_iters: iters,
                ..lrm_opt::NesterovConfig::default()
            },
            ..DecompositionConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |bench, cfg| {
            bench.iter(|| WorkloadDecomposition::compute(black_box(&w), cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompose_sizes,
    bench_gamma,
    bench_rank_ratio,
    bench_inner_solver
);
criterion_main!(benches);
