//! One benchmark per paper figure. Each benchmark runs a *representative
//! cell* of the figure at reduced scale so `cargo bench` exercises every
//! experiment code path in minutes; the full tables/series are produced by
//! the `lrm-eval` binaries (`fig2_gamma` … `fig9_rank_s`, `--full` for the
//! paper's exact grid) as indexed in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_core::decomposition::{DecompositionConfig, TargetRank};
use lrm_core::engine::Engine;
use lrm_eval::mechanisms::{self, MechanismKind};
use lrm_eval::runner::{run_cell, CellSpec};
use lrm_workload::datasets::Dataset;
use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
use lrm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 16;
const N: usize = 64;

fn data(n: usize) -> Vec<f64> {
    Dataset::SearchLogs.load_merged(n).unwrap()
}

fn cell(kind: MechanismKind, workload: &Workload, gamma: f64, ratio: f64, tag: &str) -> f64 {
    let data = data(workload.domain_size());
    let spec = CellSpec {
        kind,
        workload,
        data: &data,
        epsilon: 0.1,
        lrm_config: DecompositionConfig {
            gamma,
            target_rank: TargetRank::RatioOfRank(ratio),
            ..DecompositionConfig::default()
        },
        trials: 3,
        seed: 1,
        tag: tag.to_string(),
    };
    // Fresh engine per cell: the benchmark deliberately measures compile
    // (decomposition) time too, so cache hits would defeat its purpose.
    run_cell(&Engine::default(), &spec)
        .unwrap()
        .empirical_avg_error
}

fn bench_figures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let wdiscrete = WDiscrete::default().generate(M, N, &mut rng).unwrap();
    let wrange = WRange.generate(M, N, &mut rng).unwrap();
    let wrelated = WRelated { base_queries: 4 }
        .generate(M, N, &mut rng)
        .unwrap();

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Fig. 2: LRM cell at a mid-grid γ.
    group.bench_function("fig2_gamma_cell", |b| {
        b.iter(|| cell(MechanismKind::Lrm, &wrange, 1e-2, 1.2, "bench/fig2"))
    });
    // Fig. 3: LRM cell at ratio 1.2.
    group.bench_function("fig3_rank_cell", |b| {
        b.iter(|| cell(MechanismKind::Lrm, &wrelated, 1e-2, 1.2, "bench/fig3"))
    });
    // Fig. 4: WDiscrete n-sweep cell — all five mechanisms.
    group.bench_function("fig4_wdiscrete_cell", |b| {
        b.iter(|| {
            mechanisms::FIG4_SET
                .iter()
                .map(|k| cell(*k, &wdiscrete, 1e-2, 1.2, "bench/fig4"))
                .sum::<f64>()
        })
    });
    // Fig. 5: WRange n-sweep cell.
    group.bench_function("fig5_wrange_cell", |b| {
        b.iter(|| {
            mechanisms::FIG4_SET
                .iter()
                .map(|k| cell(*k, &wrange, 1e-2, 1.2, "bench/fig5"))
                .sum::<f64>()
        })
    });
    // Fig. 6: WRelated n-sweep cell.
    group.bench_function("fig6_wrelated_cell", |b| {
        b.iter(|| {
            mechanisms::FIG4_SET
                .iter()
                .map(|k| cell(*k, &wrelated, 1e-2, 1.2, "bench/fig6"))
                .sum::<f64>()
        })
    });
    // Fig. 7: WRange m-sweep cell — the four-mechanism set.
    group.bench_function("fig7_wrange_cell", |b| {
        b.iter(|| {
            mechanisms::FIG7_SET
                .iter()
                .map(|k| cell(*k, &wrange, 1e-2, 1.2, "bench/fig7"))
                .sum::<f64>()
        })
    });
    // Fig. 8: WRelated m-sweep cell.
    group.bench_function("fig8_wrelated_cell", |b| {
        b.iter(|| {
            mechanisms::FIG7_SET
                .iter()
                .map(|k| cell(*k, &wrelated, 1e-2, 1.2, "bench/fig8"))
                .sum::<f64>()
        })
    });
    // Fig. 9: WRelated s-sweep cell at low rank (LRM's best regime).
    group.bench_function("fig9_low_rank_cell", |b| {
        b.iter(|| {
            mechanisms::FIG7_SET
                .iter()
                .map(|k| cell(*k, &wrelated, 1e-2, 1.2, "bench/fig9"))
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
