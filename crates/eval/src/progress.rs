//! Progress reporting for the evaluation binaries, routed through the
//! observability layer.
//!
//! Every serving-stack binary (`load_sim`, `gaussian`, `warm_start`,
//! `chaos`, `scaling_sweep`) calls [`init_tracing`] first thing in
//! `main`: when `LRM_TRACE=<path>` is set, a [`lrm_obs::JsonLines`]
//! subscriber writes the full request-lifecycle trace — plus the
//! binary's own `progress` events — to that file, so one env var turns
//! any benchmark run into a trace capture. Without it, nothing is
//! installed and the serving stack keeps its one-relaxed-load disabled
//! fast path.
//!
//! [`info`] is a progress note: an obs `progress` event while a
//! subscriber is live (so it lands in the trace, ordered against the
//! spans it narrates), stderr otherwise. [`fail`] is a gate verdict:
//! always on stderr — CI greps for `FAIL:` — and mirrored into the
//! trace when one is being written.

use std::fs::File;
use std::sync::Arc;

/// Installs a JSON-lines subscriber writing to `$LRM_TRACE` when that
/// variable names a creatable path. Returns whether tracing is on.
pub fn init_tracing(bin: &'static str) -> bool {
    let Ok(path) = std::env::var("LRM_TRACE") else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    match File::create(&path) {
        Ok(file) => {
            // The subscriber registry is a static that is never dropped,
            // so a BufWriter here would lose its tail at process exit —
            // write each record straight to the file instead (JsonLines
            // emits one write_all per line).
            lrm_obs::install(Arc::new(lrm_obs::JsonLines::new(file)));
            lrm_obs::event!("progress", bin = bin, msg = format!("tracing to {path}"));
            true
        }
        Err(e) => {
            eprintln!("{bin}: cannot create LRM_TRACE={path}: {e}");
            false
        }
    }
}

/// A progress note: into the trace when a subscriber is installed,
/// stderr otherwise. Usually invoked through [`crate::info!`].
pub fn info(bin: &'static str, message: String) {
    if lrm_obs::enabled() {
        lrm_obs::event!("progress", bin = bin, msg = message);
    } else {
        eprintln!("{message}");
    }
}

/// A gate verdict or hard error: always stderr (the message is the
/// CI-facing diagnostic), mirrored into the trace when one is live.
/// Usually invoked through [`crate::fail!`].
pub fn fail(bin: &'static str, message: String) {
    eprintln!("{message}");
    lrm_obs::event!("progress", bin = bin, level = "fail", msg = message);
}

/// `eprintln!`-compatible progress note routed through
/// [`progress::info`](info): format arguments, then trace-or-stderr.
#[macro_export]
macro_rules! info {
    ($bin:expr, $($arg:tt)*) => {{
        #[allow(clippy::useless_format)]
        let msg = ::std::format!($($arg)*);
        $crate::progress::info($bin, msg);
    }};
}

/// `eprintln!`-compatible failure report routed through
/// [`progress::fail`](fail): format arguments, print to stderr, mirror
/// into the trace.
#[macro_export]
macro_rules! fail {
    ($bin:expr, $($arg:tt)*) => {{
        #[allow(clippy::useless_format)]
        let msg = ::std::format!($($arg)*);
        $crate::progress::fail($bin, msg);
    }};
}
