//! Mechanism selection for the harness.
//!
//! The registry itself lives in [`lrm_core::engine`]; this module only
//! re-exports it and names the paper's figure panels, plus the LRM
//! configuration shorthand the experiments share.

use lrm_core::decomposition::{DecompositionConfig, TargetRank};

pub use lrm_core::engine::{CompileOptions, MechanismKind};

/// The five mechanisms of Figs. 4–6, in the paper's legend order.
pub const FIG4_SET: [MechanismKind; 5] = [
    MechanismKind::MatrixMechanism,
    MechanismKind::Laplace,
    MechanismKind::Wavelet,
    MechanismKind::Hierarchical,
    MechanismKind::Lrm,
];

/// The four mechanisms of Figs. 7–9 (MM excluded "because of its poor
/// performance", Section 6.2).
pub const FIG7_SET: [MechanismKind; 4] = [
    MechanismKind::Laplace,
    MechanismKind::Wavelet,
    MechanismKind::Hierarchical,
    MechanismKind::Lrm,
];

/// LRM configuration with the harness defaults for a given (γ, r-ratio).
pub fn lrm_config(gamma: f64, rank_ratio: f64) -> DecompositionConfig {
    DecompositionConfig {
        gamma,
        target_rank: TargetRank::RatioOfRank(rank_ratio),
        ..DecompositionConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;
    use lrm_core::Mechanism as _;
    use lrm_dp::Epsilon;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure_panels_compile_through_the_engine() {
        let ctx = ExperimentContext {
            quiet: true,
            ..ExperimentContext::default()
        };
        let w = WRange
            .generate(6, 8, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let options = CompileOptions::with_decomposition(lrm_config(0.01, 1.2));
        let eps = Epsilon::new(1.0).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for kind in FIG4_SET {
            let compiled = ctx.engine().compile(&w, kind, &options).unwrap();
            assert_eq!(compiled.meta().label, kind.label());
            let mut rng = lrm_dp::rng::derive_rng(1, 2);
            let y = compiled.answer(&x, eps, &mut rng).unwrap();
            assert_eq!(y.len(), 6, "{}", kind.label());
            assert!(compiled.expected_error(eps, Some(&x)) > 0.0);
        }
    }

    #[test]
    fn figure_sets_match_paper() {
        assert_eq!(FIG4_SET.len(), 5);
        assert_eq!(FIG7_SET.len(), 4);
        assert!(!FIG7_SET.contains(&MechanismKind::MatrixMechanism));
    }
}
