//! Mechanism selection and construction for the harness.

use lrm_core::baselines::{
    HierarchicalMechanism, MatrixMechanism, MatrixMechanismConfig, NoiseOnData, NoiseOnResults,
    WaveletMechanism,
};
use lrm_core::decomposition::{DecompositionConfig, TargetRank};
use lrm_core::{CoreError, LowRankMechanism, Mechanism};
use lrm_workload::Workload;

/// The mechanisms plotted in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Low-Rank Mechanism (this paper).
    Lrm,
    /// The naive Laplace baseline plotted as "LM" (noise on data, Eq. 4;
    /// see DESIGN.md §5 on this reading).
    Lm,
    /// Noise on results (Eq. 5) — implemented for completeness; not
    /// plotted in the paper's figures.
    Nor,
    /// Matrix Mechanism (Appendix B).
    Mm,
    /// Wavelet Mechanism (Privelet).
    Wm,
    /// Hierarchical Mechanism (Hay et al.).
    Hm,
}

impl MechanismKind {
    /// The five mechanisms of Figs. 4–6, in the paper's legend order.
    pub const FIG4_SET: [MechanismKind; 5] = [
        MechanismKind::Mm,
        MechanismKind::Lm,
        MechanismKind::Wm,
        MechanismKind::Hm,
        MechanismKind::Lrm,
    ];

    /// The four mechanisms of Figs. 7–9 (MM excluded "because of its poor
    /// performance", Section 6.2).
    pub const FIG7_SET: [MechanismKind; 4] = [
        MechanismKind::Lm,
        MechanismKind::Wm,
        MechanismKind::Hm,
        MechanismKind::Lrm,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            MechanismKind::Lrm => "LRM",
            MechanismKind::Lm => "LM",
            MechanismKind::Nor => "NOR",
            MechanismKind::Mm => "MM",
            MechanismKind::Wm => "WM",
            MechanismKind::Hm => "HM",
        }
    }

    /// Compiles the mechanism for a workload. `lrm_config` parameterizes
    /// LRM (γ, r, ALM budgets); MM uses its Appendix-B defaults.
    pub fn compile(
        &self,
        workload: &Workload,
        lrm_config: &DecompositionConfig,
    ) -> Result<Box<dyn Mechanism>, CoreError> {
        Ok(match self {
            MechanismKind::Lrm => Box::new(LowRankMechanism::compile(workload, lrm_config)?),
            MechanismKind::Lm => Box::new(NoiseOnData::compile(workload)),
            MechanismKind::Nor => Box::new(NoiseOnResults::compile(workload)),
            MechanismKind::Mm => Box::new(MatrixMechanism::compile(
                workload,
                &MatrixMechanismConfig::default(),
            )?),
            MechanismKind::Wm => Box::new(WaveletMechanism::compile(workload)),
            MechanismKind::Hm => Box::new(HierarchicalMechanism::compile(workload)),
        })
    }
}

/// LRM configuration with the harness defaults for a given (γ, r-ratio).
pub fn lrm_config(gamma: f64, rank_ratio: f64) -> DecompositionConfig {
    DecompositionConfig {
        gamma,
        target_rank: TargetRank::RatioOfRank(rank_ratio),
        ..DecompositionConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::Epsilon;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_kinds_compile_and_answer() {
        let w = WRange
            .generate(6, 8, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let cfg = lrm_config(0.01, 1.2);
        let eps = Epsilon::new(1.0).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for kind in [
            MechanismKind::Lrm,
            MechanismKind::Lm,
            MechanismKind::Nor,
            MechanismKind::Mm,
            MechanismKind::Wm,
            MechanismKind::Hm,
        ] {
            let mech = kind.compile(&w, &cfg).unwrap();
            assert_eq!(mech.name(), kind.name());
            let mut rng = lrm_dp::rng::derive_rng(1, 2);
            let y = mech.answer(&x, eps, &mut rng).unwrap();
            assert_eq!(y.len(), 6, "{}", kind.name());
            assert!(mech.expected_error(eps, Some(&x)) > 0.0);
        }
    }

    #[test]
    fn figure_sets_match_paper() {
        assert_eq!(MechanismKind::FIG4_SET.len(), 5);
        assert_eq!(MechanismKind::FIG7_SET.len(), 4);
        assert!(!MechanismKind::FIG7_SET.contains(&MechanismKind::Mm));
    }
}
