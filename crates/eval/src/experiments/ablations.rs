//! Ablation studies on Algorithm 1's design choices (DESIGN.md §8):
//!
//! * β growth factor and doubling period (the paper fixes ×2 every 10);
//! * inner-solver budget: Algorithm 2's acceleration vs a starved budget
//!   (effectively plain projected gradient, ref \[10\] vs ref \[23\]);
//! * the feasibility polish (this reproduction's addition) on vs off;
//! * dead-direction revival on larger-than-rank targets;
//! * range structure vs low rank: WRange against WPermutedRange (same
//!   rank profile, no contiguity) — separating LRM's advantage from the
//!   range-specific advantage of WM/HM.

use crate::experiments::sweep::format_err;
use crate::experiments::ExperimentContext;
use crate::report::{CsvRecord, TableWriter};
use lrm_core::decomposition::{DecompositionConfig, WorkloadDecomposition};
use lrm_core::mechanism::Mechanism;
use lrm_core::LowRankMechanism;
use lrm_dp::rng::{derive_rng, stream_of};
use lrm_dp::Epsilon;
use lrm_opt::{AlmSchedule, NesterovConfig};
use lrm_workload::generators::{WPermutedRange, WRange, WorkloadGenerator};
use lrm_workload::Workload;
use std::time::Instant;

/// One solver variant under test.
struct Variant {
    name: &'static str,
    config: DecompositionConfig,
}

fn variants() -> Vec<Variant> {
    let base = DecompositionConfig::default();
    vec![
        Variant {
            name: "paper (x2/10, nesterov40, polish)",
            config: base.clone(),
        },
        Variant {
            name: "slow beta (x1.3/10)",
            config: DecompositionConfig {
                schedule: AlmSchedule {
                    growth: 1.3,
                    ..AlmSchedule::default()
                },
                max_outer_iters: 300,
                ..base.clone()
            },
        },
        Variant {
            name: "fast beta (x4/10)",
            config: DecompositionConfig {
                schedule: AlmSchedule {
                    growth: 4.0,
                    ..AlmSchedule::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "starved inner (nesterov5)",
            config: DecompositionConfig {
                nesterov: NesterovConfig {
                    max_iters: 5,
                    ..NesterovConfig::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "no polish",
            config: DecompositionConfig {
                polish_iters: 0,
                ..base.clone()
            },
        },
    ]
}

/// Runs every solver variant on one workload; returns table rows.
fn run_variants(workload: &Workload, wname: &str, ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let eps = Epsilon::new(0.1).expect("valid");
    let data: Vec<f64> = {
        let mut rng = derive_rng(ctx.seed, stream_of(&format!("ablation/data/{wname}")));
        use rand::Rng;
        (0..workload.domain_size())
            .map(|_| rng.gen_range(0.0..10_000.0f64))
            .collect()
    };

    let mut table = TableWriter::new(format!(
        "Ablation — Algorithm 1 variants on {wname} (m={}, n={}, rank={})",
        workload.num_queries(),
        workload.domain_size(),
        workload.rank()
    ));
    table.header(&[
        "variant",
        "Phi",
        "residual",
        "outer iters",
        "err(ε=0.1)",
        "time (s)",
    ]);

    let mut records = Vec::new();
    for variant in variants() {
        let t0 = Instant::now();
        let decomposition = match WorkloadDecomposition::compute(workload, &variant.config) {
            Ok(d) => d,
            Err(e) => {
                table.row(vec![
                    variant.name.into(),
                    format!("err:{e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let seconds = t0.elapsed().as_secs_f64();
        let mech = LowRankMechanism::from_decomposition(
            decomposition.clone(),
            workload.num_queries(),
            workload.domain_size(),
        );
        let err = mech.expected_error(eps, Some(&data));
        table.row(vec![
            variant.name.into(),
            format!("{:.4}", decomposition.scale()),
            format!("{:.2e}", decomposition.stats().residual),
            decomposition.stats().outer_iterations.to_string(),
            format_err(err),
            format!("{seconds:.2}"),
        ]);
        records.push(CsvRecord {
            figure: "ablation".into(),
            dataset: "uniform-synthetic".into(),
            workload: wname.into(),
            mechanism: variant.name.into(),
            x_name: "variant".into(),
            x: 0.0,
            epsilon: eps.value(),
            analytic_avg_error: err,
            empirical_avg_error: f64::NAN,
            compile_seconds: seconds,
            answer_seconds: 0.0,
        });
    }
    if !ctx.quiet {
        println!("{}", table.render());
    }
    records
}

/// Runs the full ablation suite, evicting its strategies on the way out.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let (m, n) = if ctx.full { (64, 256) } else { (24, 64) };
    let mut records = Vec::new();

    let wrange = WRange
        .generate(
            m,
            n,
            &mut derive_rng(ctx.seed, stream_of("ablation/wrange")),
        )
        .expect("valid dims");
    records.extend(run_variants(&wrange, "WRange", ctx));

    // Range structure vs low rank: same generator through a column
    // permutation. WM/HM degrade; LRM (rank-driven) should not.
    let wperm = WPermutedRange
        .generate(m, n, &mut derive_rng(ctx.seed, stream_of("ablation/wperm")))
        .expect("valid dims");
    records.extend(run_variants(&wperm, "WPermutedRange", ctx));

    if !ctx.quiet {
        let eps = Epsilon::new(0.1).expect("valid");
        let mut table = TableWriter::new(
            "Ablation — range structure vs low rank (expected batch error, ε = 0.1)",
        );
        table.header(&["workload", "LM", "WM", "HM", "LRM"]);
        for (name, w) in [("WRange", &wrange), ("WPermutedRange", &wperm)] {
            use lrm_core::engine::MechanismKind;
            let err = |kind: MechanismKind| {
                ctx.engine()
                    .compile_default(w, kind)
                    .map(|c| c.expected_error(eps, None))
                    .unwrap_or(f64::NAN)
            };
            let lm = err(MechanismKind::Laplace);
            let wm = err(MechanismKind::Wavelet);
            let hm = err(MechanismKind::Hierarchical);
            let lrm = err(MechanismKind::Lrm);
            table.row(vec![
                name.into(),
                format_err(lm),
                format_err(wm),
                format_err(hm),
                format_err(lrm),
            ]);
        }
        println!("{}", table.render());
    }
    ctx.engine().clear_cache();
    records
}
