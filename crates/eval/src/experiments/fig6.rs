//! Figure 6: all five mechanisms vs domain size `n` on the WRelated
//! workload, ε = 0.1, three datasets.

use crate::experiments::sweep::{run_domain_sweep, SweepPlan};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::params;
use crate::report::CsvRecord;
use lrm_workload::generators::WRelated;

/// Runs the Fig. 6 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    // s = ratio·min(m, n); m is fixed here and every n in the grid is
    // ≥ m, so s is constant across the sweep — the workload's rank stays
    // low while n grows, which is exactly the regime the figure shows
    // LRM exploiting.
    let m = ctx.default_queries();
    let s = ((params::DEFAULT_S_RATIO * m as f64).round() as usize).max(1);
    let plan = SweepPlan {
        figure: "fig6",
        title: "Fig 6 — error vs domain size n (WRelated)",
        x_name: "n",
        mechanisms: &mechanisms::FIG4_SET,
        workload_name: "WRelated",
    };
    run_domain_sweep(&plan, &WRelated { base_queries: s }, ctx)
}
