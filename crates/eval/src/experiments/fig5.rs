//! Figure 5: all five mechanisms vs domain size `n` on the WRange
//! workload, ε = 0.1, three datasets.

use crate::experiments::sweep::{run_domain_sweep, SweepPlan};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::report::CsvRecord;
use lrm_workload::generators::WRange;

/// Runs the Fig. 5 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let plan = SweepPlan {
        figure: "fig5",
        title: "Fig 5 — error vs domain size n (WRange)",
        x_name: "n",
        mechanisms: &mechanisms::FIG4_SET,
        workload_name: "WRange",
    };
    run_domain_sweep(&plan, &WRange, ctx)
}
