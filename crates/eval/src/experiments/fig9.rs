//! Figure 9: LM/WM/HM/LRM vs the WRelated base-query count
//! `s = ratio·min(m, n)`, ε = 0.1, three datasets. This is the figure
//! that isolates the low-rank property as the source of LRM's advantage.

use crate::experiments::sweep::{run_sweep, workload_at, SweepPlan, SweepPoint};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::params;
use crate::report::CsvRecord;
use lrm_workload::generators::WRelated;

/// Runs the Fig. 9 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let m = ctx.default_queries();
    let n = ctx.default_domain();
    let plan = SweepPlan {
        figure: "fig9",
        title: "Fig 9 — error vs s-ratio (WRelated, s = ratio·min(m,n))",
        x_name: "s-ratio",
        mechanisms: &mechanisms::FIG7_SET,
        workload_name: "WRelated",
    };
    let points: Vec<SweepPoint> = params::S_RATIOS
        .iter()
        .map(|&ratio| {
            let generator = WRelated::with_ratio(ratio, m, n).expect("grid ratios are valid");
            SweepPoint {
                x: ratio,
                m,
                n,
                workload: workload_at(&generator, m, n, ctx, &format!("fig9/gen/ratio={ratio}")),
            }
        })
        .collect();
    run_sweep(&plan, points, ctx)
}
