//! Figure 2: effect of the relaxation parameter γ on LRM's accuracy and
//! decomposition time (Search Logs dataset, all three workloads,
//! ε ∈ {1, 0.1, 0.01}).

use crate::experiments::sweep::{format_err, workload_at};
use crate::experiments::ExperimentContext;
use crate::mechanisms::MechanismKind;
use crate::params;
use crate::report::{CsvRecord, TableWriter};
use crate::runner::{compile_timed, measure};
use lrm_workload::datasets::Dataset;
use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};

/// Runs the Fig. 2 sweep and returns the flat records.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let m = ctx.default_queries();
    let n = ctx.default_domain();
    let dataset = Dataset::SearchLogs;
    let data = dataset.load_merged(n).expect("n is below dataset size");

    let wrelated =
        WRelated::with_ratio(params::DEFAULT_S_RATIO, m, n).expect("default ratio is valid");
    let generators: [(&str, &dyn WorkloadGenerator); 3] = [
        ("WDiscrete", &WDiscrete::default()),
        ("WRange", &WRange),
        ("WRelated", &wrelated),
    ];

    let mut records = Vec::new();
    for (wname, generator) in generators {
        let workload = workload_at(generator, m, n, ctx, &format!("fig2/gen/{wname}"));
        let mut table = TableWriter::new(format!(
            "Fig 2 — LRM error & time vs γ ({wname}, Search Logs, m={m}, n={n})"
        ));
        table.header(&["gamma", "eps=1", "eps=0.1", "eps=0.01", "decomp time (s)"]);

        for &gamma in &params::GAMMAS {
            let mut row = vec![format!("{gamma:.0e}")];
            // One decomposition per (workload, γ): it does not depend on ε
            // (Section 6.1), so all three budgets reuse it.
            let cfg = ctx.lrm_config_for(gamma, params::DEFAULT_RANK_RATIO, m, n);
            let (mechanism, compile_seconds) =
                match compile_timed(ctx.engine(), MechanismKind::Lrm, &workload, &cfg) {
                    Ok(pair) => pair,
                    Err(e) => {
                        row.push(format!("err:{e}"));
                        table.row(row);
                        continue;
                    }
                };
            for &eps in &params::EPSILONS {
                let tag = format!("fig2/{wname}/gamma={gamma}/eps={eps}");
                match measure(
                    &mechanism, &workload, &data, eps, ctx.trials, ctx.seed, &tag,
                ) {
                    Ok((analytic, empirical, answer_seconds)) => {
                        row.push(format_err(empirical));
                        records.push(CsvRecord {
                            figure: "fig2".into(),
                            dataset: dataset.name().into(),
                            workload: wname.into(),
                            mechanism: "LRM".into(),
                            x_name: "gamma".into(),
                            x: gamma,
                            epsilon: eps,
                            analytic_avg_error: analytic,
                            empirical_avg_error: empirical,
                            compile_seconds,
                            answer_seconds,
                        });
                    }
                    Err(e) => row.push(format!("err:{e}")),
                }
            }
            row.push(format!("{compile_seconds:.2}"));
            table.row(row);
        }
        if !ctx.quiet {
            println!("{}", table.render());
        }
        // Each (workload, γ) strategy was already reused across all three
        // ε — nothing further in the run revisits it.
        ctx.engine().clear_cache();
    }
    records
}
