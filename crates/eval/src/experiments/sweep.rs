//! Shared sweep machinery for Figs. 4–9: every one of those figures is
//! "error of K mechanisms × 3 datasets as one axis varies".

use crate::experiments::ExperimentContext;
use crate::mechanisms::MechanismKind;
use crate::params;
use crate::report::{CsvRecord, TableWriter};
use crate::runner::{compile_timed, measure};
use lrm_dp::rng::{derive_rng, stream_of};
use lrm_workload::datasets::Dataset;
use lrm_workload::generators::WorkloadGenerator;
use lrm_workload::Workload;

/// What a figure sweeps and over which mechanisms.
pub struct SweepPlan<'a> {
    /// Figure id, e.g. `"fig4"`.
    pub figure: &'a str,
    /// Human title used in the table header.
    pub title: &'a str,
    /// Axis name (`"n"`, `"m"`, `"s-ratio"`).
    pub x_name: &'a str,
    /// Mechanisms to run (paper legend order).
    pub mechanisms: &'a [MechanismKind],
    /// Workload family name for records.
    pub workload_name: &'a str,
}

/// One point of a sweep: the workload plus its generation metadata.
pub struct SweepPoint {
    /// Axis value.
    pub x: f64,
    /// Queries m.
    pub m: usize,
    /// Domain size n.
    pub n: usize,
    /// The generated workload.
    pub workload: Workload,
}

/// Builds a seeded workload for a sweep point.
pub fn workload_at(
    generator: &dyn WorkloadGenerator,
    m: usize,
    n: usize,
    ctx: &ExperimentContext,
    tag: &str,
) -> Workload {
    let mut rng = derive_rng(ctx.seed, stream_of(tag));
    generator
        .generate(m, n, &mut rng)
        .expect("sweep dimensions are valid")
}

/// Runs a full sweep. Every mechanism is **compiled once per point** (the
/// strategy search is data-independent — the paper reuses one
/// decomposition across ε and datasets too, Section 6.1) and then
/// measured on all three datasets. Returns CSV records; prints one table
/// per dataset unless quiet.
pub fn run_sweep(
    plan: &SweepPlan<'_>,
    points: Vec<SweepPoint>,
    ctx: &ExperimentContext,
) -> Vec<CsvRecord> {
    let mut records = Vec::new();
    // tables[d] collects the rows for dataset d.
    let mut tables: Vec<Vec<Vec<String>>> = vec![Vec::new(); Dataset::ALL.len()];

    for point in &points {
        // Compile every mechanism once for this point.
        let compiled: Vec<(MechanismKind, Result<_, _>)> = plan
            .mechanisms
            .iter()
            .map(|kind| {
                if *kind == MechanismKind::MatrixMechanism && point.n > ctx.mm_domain_cap() {
                    // Appendix-B MM is O(n³) per iteration; the paper
                    // itself calls this overhead out as prohibitive.
                    return (
                        *kind,
                        Err(lrm_core::CoreError::InvalidArgument(
                            "skipped: n beyond the MM domain cap".into(),
                        )),
                    );
                }
                let cfg = ctx.lrm_config_for(
                    params::DEFAULT_GAMMA,
                    params::DEFAULT_RANK_RATIO,
                    point.m,
                    point.n,
                );
                (
                    *kind,
                    compile_timed(ctx.engine(), *kind, &point.workload, &cfg),
                )
            })
            .collect();

        for (d, dataset) in Dataset::ALL.iter().enumerate() {
            let data = dataset
                .load_merged(point.n)
                .expect("dataset is larger than every n in the grids");
            let mut row = vec![format_axis(point.x)];
            for (kind, compilation) in &compiled {
                match compilation {
                    Ok((mechanism, compile_seconds)) => {
                        let tag = format!(
                            "{}/{}/{}/{}={}",
                            plan.figure,
                            dataset.name(),
                            kind.label(),
                            plan.x_name,
                            point.x
                        );
                        match measure(
                            mechanism,
                            &point.workload,
                            &data,
                            params::EPSILON_MAIN,
                            ctx.trials,
                            ctx.seed,
                            &tag,
                        ) {
                            Ok((analytic, empirical, answer_seconds)) => {
                                row.push(format_err(empirical));
                                records.push(CsvRecord {
                                    figure: plan.figure.into(),
                                    dataset: dataset.name().into(),
                                    workload: plan.workload_name.into(),
                                    mechanism: kind.label().into(),
                                    x_name: plan.x_name.into(),
                                    x: point.x,
                                    epsilon: params::EPSILON_MAIN,
                                    analytic_avg_error: analytic,
                                    empirical_avg_error: empirical,
                                    compile_seconds: *compile_seconds,
                                    answer_seconds,
                                });
                            }
                            Err(e) => row.push(format!("err:{e}")),
                        }
                    }
                    Err(_) => row.push("—".into()),
                }
            }
            tables[d].push(row);
        }
        // Every point is a distinct workload (distinct fingerprint), so
        // nothing later in the run can hit these entries — evict them
        // rather than retain every strategy of the whole sweep.
        drop(compiled);
        ctx.engine().clear_cache();
    }

    for (d, dataset) in Dataset::ALL.iter().enumerate() {
        let mut table = TableWriter::new(format!(
            "{} — {} (ε = {}, avg squared error, {} trials)",
            plan.title,
            dataset.name(),
            params::EPSILON_MAIN,
            ctx.trials
        ));
        let mut header: Vec<&str> = vec![plan.x_name];
        for kind in plan.mechanisms {
            header.push(kind.label());
        }
        table.header(&header);
        for row in tables[d].drain(..) {
            table.row(row);
        }
        if !ctx.quiet {
            println!("{}", table.render());
        }
    }
    records
}

/// Fig. 4–6 style sweep: domain size `n` varies, `m` fixed.
pub fn run_domain_sweep(
    plan: &SweepPlan<'_>,
    generator: &dyn WorkloadGenerator,
    ctx: &ExperimentContext,
) -> Vec<CsvRecord> {
    let m = ctx.default_queries();
    let points: Vec<SweepPoint> = ctx
        .domain_sizes()
        .into_iter()
        .map(|n| SweepPoint {
            x: n as f64,
            m,
            n,
            workload: workload_at(generator, m, n, ctx, &format!("{}/gen/n={n}", plan.figure)),
        })
        .collect();
    run_sweep(plan, points, ctx)
}

/// Fig. 7–8 style sweep: query count `m` varies, `n` fixed.
pub fn run_query_sweep(
    plan: &SweepPlan<'_>,
    generator: &dyn WorkloadGenerator,
    ctx: &ExperimentContext,
) -> Vec<CsvRecord> {
    let n = ctx.default_domain_for_query_sweep();
    let points: Vec<SweepPoint> = ctx
        .query_sizes()
        .into_iter()
        .map(|m| SweepPoint {
            x: m as f64,
            m,
            n,
            workload: workload_at(generator, m, n, ctx, &format!("{}/gen/m={m}", plan.figure)),
        })
        .collect();
    run_sweep(plan, points, ctx)
}

impl ExperimentContext {
    /// Domain size used by the m sweeps (Figs. 7–8): the paper keeps
    /// `m ≤ n`, so the domain is the grid's largest m.
    pub fn default_domain_for_query_sweep(&self) -> usize {
        if self.full {
            crate::params::QUERY_SIZES_FULL[crate::params::QUERY_SIZES_FULL.len() - 1]
        } else {
            crate::params::QUERY_SIZES_QUICK[crate::params::QUERY_SIZES_QUICK.len() - 1]
        }
    }
}

fn format_axis(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Scientific-notation error formatting matching the figures' log axes.
pub fn format_err(v: f64) -> String {
    if v.is_nan() {
        "nan".into()
    } else {
        format!("{v:.3e}")
    }
}
