//! Multi-tenant load harness for the `lrm-server` runtime: the coalescing
//! server against a per-query baseline on the same trace, at equal ε.
//!
//! The trace is the adaptive-serving scenario the paper's premise implies:
//! many tenants concurrently submit *correlated* batch specs — range
//! panels and prefix histograms snapped to a coarse boundary grid, so the
//! combined workload of any batch has rank ≤ cuts + 1 however many specs
//! coalesce — and every request asks for one release at the same ε.
//! The coalescing run answers each batch through **one** compiled
//! strategy and **one** noise draw per strategy column; the baseline run
//! (`coalesce_window = 0`, `max_batch = 1`) compiles and answers every
//! request alone. Throughput, per-query error against the exact answers,
//! ledger over-spend (from the grants each client actually observed, not
//! the clamped ledger counter), and the global densification counter are
//! all recorded into a `BENCH_5.json`-style report.
//!
//! The same machinery also drives the **approximate-DP** comparison (see
//! [`crate::experiments::gaussian`]): with a positive
//! [`ServingConfig::noise_delta`] every release is (ε, δ)-DP through the
//! Gaussian calibration, requests draw their ε from
//! [`ServingConfig::eps_levels`] round-robin,
//! and [`ServingMode::Fragmented`] gives the ε-keyed scheduler baseline
//! that cross-ε coalescing is measured against.

use crate::experiments::scaling::scaling_lrm_config;
use crate::report::TableWriter;
use lrm_core::engine::{CompileOptions, Engine, MechanismKind, NoiseFlavor};
use lrm_dp::rng::derive_rng;
use lrm_dp::{Budget, Epsilon};
use lrm_linalg::operator::densification_count;
use lrm_server::{QuerySpec, Server, ServerError};
use lrm_workload::{Attribute, Schema};
use rand::Rng;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Load-harness configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Histogram buckets `n` (unit-width, values `0..n`).
    pub buckets: usize,
    /// Boundary cuts the spec predicates snap to (`buckets` must be a
    /// multiple; combined workload rank stays ≤ cuts + 1).
    pub cuts: usize,
    /// Number of tenants (requests round-robin across them).
    pub tenants: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client thread submits.
    pub requests_per_client: usize,
    /// Requests a client submits before it starts waiting on tickets
    /// (in-flight window; bursts are what give the scheduler something
    /// to coalesce).
    pub burst: usize,
    /// Queries per range-panel spec.
    pub spec_queries: usize,
    /// Coalescing window of the coalescing run.
    pub window: Duration,
    /// Batch-size cap of the coalescing run.
    pub max_batch: usize,
    /// Worker threads (both runs).
    pub workers: usize,
    /// Per-release ε (identical for every request in both runs).
    pub eps_request: f64,
    /// Per-tenant total ε. Sized so tenants exhaust mid-run and the
    /// rejection path is exercised: grants per tenant =
    /// `floor(budget / eps_request)`, identical in both runs.
    pub tenant_budget: f64,
    /// Master seed (trace, data, and noise streams all derive from it).
    pub seed: u64,
    /// Suppress the summary table.
    pub quiet: bool,
    /// Per-release δ. `0` (the default) runs the pure ε-DP Laplace
    /// pipeline; `> 0` switches every server in the harness to the
    /// Gaussian calibration and every release to (ε, δ)-DP.
    pub noise_delta: f64,
    /// Per-tenant total δ (only read when `noise_delta > 0`).
    pub tenant_delta: f64,
    /// Per-release ε levels, assigned round-robin across the trace.
    /// Empty (the default) means every request uses `eps_request` — the
    /// pure harness's behavior. A mixed-ε trace is what separates
    /// cross-ε coalescing from ε-keyed scheduling.
    pub eps_levels: Vec<f64>,
    /// Whether the servers keep the rank-growth batch-close rule (the
    /// production default). The Gaussian comparison turns it off — in
    /// *both* runs — because it closes batches on a property orthogonal
    /// to scheduler keying, which is the variable under measurement.
    pub rank_close: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            buckets: 1024,
            cuts: 32,
            tenants: 8,
            clients: 4,
            requests_per_client: 64,
            burst: 16,
            spec_queries: 16,
            window: Duration::from_millis(20),
            max_batch: 16,
            workers: 3,
            eps_request: 0.25,
            tenant_budget: 6.0,
            seed: 20120827,
            quiet: false,
            noise_delta: 0.0,
            tenant_delta: 0.0,
            eps_levels: Vec::new(),
            rank_close: true,
        }
    }
}

impl ServingConfig {
    /// The pinned CI smoke configuration: small domain, bounded request
    /// count, budgets that exhaust mid-run.
    pub fn smoke() -> Self {
        Self {
            buckets: 256,
            requests_per_client: 24,
            burst: 16,
            tenant_budget: 2.5,
            quiet: false,
            ..Self::default()
        }
    }

    /// The pinned mixed-ε Gaussian configuration: three ε levels
    /// round-robin, δ on every release, budgets that exhaust mid-run in
    /// *both* columns' shadow (ε binds; δ leaves head-room so the
    /// refusal path is the ledger's, not an artifact).
    pub fn gaussian_smoke() -> Self {
        Self {
            noise_delta: 1e-6,
            tenant_delta: 1e-4,
            eps_levels: vec![0.1, 0.25, 0.5],
            rank_close: false,
            ..Self::smoke()
        }
    }

    /// Whether this configuration runs the Gaussian ((ε, δ)-DP) pipeline.
    pub fn is_gaussian(&self) -> bool {
        self.noise_delta > 0.0
    }

    /// The per-release ε of request `index` of the trace.
    fn eps_for(&self, index: usize) -> f64 {
        if self.eps_levels.is_empty() {
            self.eps_request
        } else {
            self.eps_levels[index % self.eps_levels.len()]
        }
    }

    /// The per-release budget of request `index` of the trace.
    fn budget_for(&self, index: usize) -> Budget {
        let eps = Epsilon::new(self.eps_for(index)).expect("positive eps");
        if self.is_gaussian() {
            Budget::approx(eps, self.noise_delta).expect("valid delta")
        } else {
            Budget::pure(eps)
        }
    }

    pub(crate) fn tenant_name(t: usize) -> String {
        format!("tenant{t:02}")
    }
}

/// One request of the pre-generated trace.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// Tenant index (round-robin).
    pub tenant: usize,
    /// The spec submitted.
    pub spec: QuerySpec,
    /// The release budget requested (ε from the round-robin level
    /// assignment; δ from [`ServingConfig::noise_delta`]).
    pub budget: Budget,
    /// Exact (noise-free) answers, for error measurement.
    pub exact: Vec<f64>,
}

/// The fixed trace both runs replay: schema, private data, and each
/// client thread's request list.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The serving schema.
    pub schema: Schema,
    /// The private unit-count vector.
    pub data: Vec<f64>,
    /// One request list per client thread.
    pub per_client: Vec<Vec<TraceRequest>>,
}

/// Generates the mixed multi-tenant trace: ~3/4 range panels, ~1/4 prefix
/// histograms, all snapped to the boundary grid.
pub fn build_trace(cfg: &ServingConfig) -> Trace {
    assert!(
        cfg.cuts >= 2 && cfg.buckets.is_multiple_of(cfg.cuts),
        "buckets must be a positive multiple of cuts"
    );
    let schema = Schema::single(
        Attribute::new("value", 0.0, cfg.buckets as f64, cfg.buckets).expect("valid attribute"),
    );
    let mut data_rng = derive_rng(cfg.seed, 0xda7a);
    let data: Vec<f64> = (0..cfg.buckets)
        .map(|_| data_rng.gen_range(0..1000) as f64)
        .collect();

    let step = cfg.buckets / cfg.cuts;
    let boundary = |k: usize| (k * step) as f64;
    let mut per_client = Vec::with_capacity(cfg.clients);
    let mut request_index = 0usize;
    for client in 0..cfg.clients {
        let mut rng = derive_rng(cfg.seed, 0xc11e_0000 + client as u64);
        let mut requests = Vec::with_capacity(cfg.requests_per_client);
        for r in 0..cfg.requests_per_client {
            let spec = if r % 4 == 3 {
                // A prefix histogram panel.
                let thresholds: Vec<f64> = (0..cfg.spec_queries)
                    .map(|_| boundary(rng.gen_range(1..=cfg.cuts)))
                    .collect();
                QuerySpec::Prefixes {
                    attr: 0,
                    thresholds,
                }
            } else {
                // A range panel.
                let ranges: Vec<(f64, f64)> = (0..cfg.spec_queries)
                    .map(|_| {
                        let lo = rng.gen_range(0..cfg.cuts);
                        let hi = rng.gen_range(lo + 1..=cfg.cuts);
                        (boundary(lo), boundary(hi))
                    })
                    .collect();
                QuerySpec::Ranges { attr: 0, ranges }
            };
            let exact = spec
                .compile(&schema)
                .expect("trace specs are valid")
                .to_workload()
                .expect("trace specs are non-empty")
                .answer(&data)
                .expect("domain matches");
            requests.push(TraceRequest {
                tenant: request_index % cfg.tenants,
                spec,
                budget: cfg.budget_for(request_index),
                exact,
            });
            request_index += 1;
        }
        per_client.push(requests);
    }
    Trace {
        schema,
        data,
        per_client,
    }
}

/// Which serving policy a run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// The coalescing scheduler (bounded window + batch cap). On a
    /// Gaussian configuration this includes cross-ε coalescing: batches
    /// key on the δ-class and mix ε levels.
    Coalescing,
    /// Per-query serving: zero window, `max_batch = 1`.
    Baseline,
    /// The ε-keyed scheduler baseline for Gaussian runs: same window and
    /// batch cap as [`ServingMode::Coalescing`], but
    /// `coalesce_across_eps(false)` — batches fragment by ε exactly as a
    /// pure scheduler's would.
    Fragmented,
}

impl ServingMode {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ServingMode::Coalescing => "coalescing",
            ServingMode::Baseline => "per-query baseline",
            ServingMode::Fragmented => "eps-fragmented",
        }
    }
}

/// Measured outcome of one run over the trace.
#[derive(Debug, Clone)]
pub struct ServingRunStats {
    /// Which policy ran.
    pub mode: &'static str,
    /// Wall-clock seconds of the whole serve (submission to drain).
    pub wall_seconds: f64,
    /// Requests granted a release.
    pub answered: u64,
    /// Requests refused with a typed budget error.
    pub rejected: u64,
    /// Individual queries released.
    pub queries_answered: u64,
    /// Granted requests per second.
    pub requests_per_second: f64,
    /// Released queries per second.
    pub queries_per_second: f64,
    /// Mean squared per-query error of the released answers.
    pub mean_squared_error: f64,
    /// Batches answered.
    pub batches: u64,
    /// Batches that coalesced ≥ 2 requests.
    pub coalesced_batches: u64,
    /// Mean requests per batch.
    pub mean_occupancy: f64,
    /// Largest batch.
    pub max_occupancy: u64,
    /// Strategy-cache misses (full compiles).
    pub cache_misses: u64,
    /// Strategy-cache memory hits.
    pub cache_hits: u64,
    /// Peak submitted-but-unanswered requests.
    pub peak_queue_depth: u64,
    /// Median submit→response latency, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile submit→response latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Whether any tenant's *observed grants* exceeded its registered
    /// budget by more than the ledger's one-slack bound (must be false).
    pub overspend: bool,
    /// Whether any tenant's observed δ grants exceeded its registered
    /// δ total (always false on pure runs; must be false on Gaussian
    /// ones).
    pub delta_overspend: bool,
    /// Gaussian batches whose members spanned ≥ 2 distinct ε — batches
    /// that exist only because of cross-ε coalescing.
    pub cross_eps_batches: u64,
    /// Operator densifications during the run (must be 0).
    pub densifications: u64,
}

/// Per-thread accumulation while driving the trace.
#[derive(Debug, Default, Clone)]
struct ClientOutcome {
    granted_per_tenant: Vec<f64>,
    granted_delta_per_tenant: Vec<f64>,
    answered: u64,
    rejected: u64,
    queries: u64,
    sq_err: f64,
}

/// Replays the trace against one server configuration.
pub fn run_serving_mode(cfg: &ServingConfig, trace: &Trace, mode: ServingMode) -> ServingRunStats {
    let (window, max_batch) = match mode {
        ServingMode::Coalescing | ServingMode::Fragmented => (cfg.window, cfg.max_batch),
        ServingMode::Baseline => (Duration::ZERO, 1),
    };
    let mut options = CompileOptions::with_decomposition(scaling_lrm_config());
    if cfg.is_gaussian() {
        options.flavor = NoiseFlavor::ApproxDp;
    }
    // A fresh engine per run: all modes start with a cold strategy cache.
    let server = Server::builder(trace.schema.clone(), trace.data.clone())
        .engine(Engine::builder().build())
        .mechanism(MechanismKind::Lrm)
        .compile_options(options)
        .coalesce_window(window)
        .max_batch(max_batch)
        .workers(cfg.workers)
        .coalesce_across_eps(mode != ServingMode::Fragmented)
        .rank_close(cfg.rank_close)
        .seed(cfg.seed)
        .build()
        .expect("valid server configuration");
    let budget_eps = Epsilon::new(cfg.tenant_budget).expect("positive budget");
    let budget = if cfg.is_gaussian() {
        Budget::approx(budget_eps, cfg.tenant_delta).expect("valid tenant delta")
    } else {
        Budget::pure(budget_eps)
    };
    for t in 0..cfg.tenants {
        server.register_tenant_budget(&ServingConfig::tenant_name(t), budget);
    }

    let densify_before = densification_count();
    let t0 = Instant::now();
    let (outcomes, report) = server.serve(|client| {
        std::thread::scope(|s| {
            let handles: Vec<_> = trace
                .per_client
                .iter()
                .map(|requests| {
                    let client = client.clone();
                    s.spawn(move || drive_client(&client, requests, cfg))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<ClientOutcome>>()
        })
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let densifications = densification_count() - densify_before;

    let mut granted = vec![0.0f64; cfg.tenants];
    let mut granted_delta = vec![0.0f64; cfg.tenants];
    let mut answered = 0u64;
    let mut rejected = 0u64;
    let mut queries = 0u64;
    let mut sq_err = 0.0f64;
    for o in &outcomes {
        for (g, total) in o.granted_per_tenant.iter().zip(granted.iter_mut()) {
            *total += g;
        }
        for (g, total) in o
            .granted_delta_per_tenant
            .iter()
            .zip(granted_delta.iter_mut())
        {
            *total += g;
        }
        answered += o.answered;
        rejected += o.rejected;
        queries += o.queries;
        sq_err += o.sq_err;
    }
    let overspend = granted
        .iter()
        .any(|&g| g > cfg.tenant_budget * (1.0 + 1e-9) + 1e-12);
    let delta_overspend = granted_delta
        .iter()
        .any(|&g| g > cfg.tenant_delta * (1.0 + 1e-9) + 1e-18);

    ServingRunStats {
        mode: mode.label(),
        wall_seconds,
        answered,
        rejected,
        queries_answered: queries,
        requests_per_second: answered as f64 / wall_seconds.max(1e-9),
        queries_per_second: queries as f64 / wall_seconds.max(1e-9),
        mean_squared_error: if queries > 0 {
            sq_err / queries as f64
        } else {
            0.0
        },
        batches: report.metrics.batches,
        coalesced_batches: report.metrics.coalesced_batches,
        mean_occupancy: report.metrics.mean_occupancy,
        max_occupancy: report.metrics.max_occupancy,
        cache_misses: report.cache.misses,
        cache_hits: report.cache.memory_hits,
        peak_queue_depth: report.metrics.peak_queue_depth,
        p50_latency_ms: report.metrics.p50_latency.as_secs_f64() * 1e3,
        p99_latency_ms: report.metrics.p99_latency.as_secs_f64() * 1e3,
        overspend,
        delta_overspend,
        cross_eps_batches: report.metrics.cross_eps_batches,
        densifications,
    }
}

/// One client thread: submit in bursts, wait the burst out, accumulate
/// grants and errors.
fn drive_client(
    client: &lrm_server::Client<'_>,
    requests: &[TraceRequest],
    cfg: &ServingConfig,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        granted_per_tenant: vec![0.0; cfg.tenants],
        granted_delta_per_tenant: vec![0.0; cfg.tenants],
        ..ClientOutcome::default()
    };
    for chunk in requests.chunks(cfg.burst.max(1)) {
        let tickets: Vec<_> = chunk
            .iter()
            .map(|req| {
                let tenant = ServingConfig::tenant_name(req.tenant);
                client
                    .submit_budget(&tenant, &req.spec, req.budget)
                    .expect("trace specs and tenants are valid")
            })
            .collect();
        for (req, ticket) in chunk.iter().zip(tickets) {
            match ticket.wait() {
                Ok(release) => {
                    out.granted_per_tenant[req.tenant] += release.eps_spent.value();
                    out.granted_delta_per_tenant[req.tenant] += release.delta_spent;
                    out.answered += 1;
                    out.queries += release.answers.len() as u64;
                    out.sq_err += release
                        .answers
                        .iter()
                        .zip(&req.exact)
                        .map(|(a, e)| (a - e) * (a - e))
                        .sum::<f64>();
                }
                Err(ServerError::Admission(_)) => out.rejected += 1,
                Err(e) => panic!("unexpected serving failure: {e}"),
            }
        }
    }
    out
}

/// The two-run comparison the `load_sim` binary reports.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Configuration echo for the report.
    pub config: ServingConfig,
    /// The coalescing run.
    pub coalesced: ServingRunStats,
    /// The per-query baseline run.
    pub baseline: ServingRunStats,
}

impl ServingReport {
    /// Coalescing throughput over baseline throughput (granted requests
    /// per second).
    pub fn speedup(&self) -> f64 {
        self.coalesced.requests_per_second / self.baseline.requests_per_second.max(1e-12)
    }

    /// Baseline per-query MSE over coalesced per-query MSE (> 1 means
    /// coalescing also answered more accurately at equal ε).
    pub fn error_ratio(&self) -> f64 {
        self.baseline.mean_squared_error / self.coalesced.mean_squared_error.max(1e-300)
    }

    /// The acceptance gate: strictly higher coalescing throughput, zero
    /// over-spend, zero densifications, and the coalescer actually
    /// coalesced.
    pub fn passes_smoke(&self) -> bool {
        self.speedup() > 1.0
            && !self.coalesced.overspend
            && !self.baseline.overspend
            && !self.coalesced.delta_overspend
            && !self.baseline.delta_overspend
            && self.coalesced.densifications == 0
            && self.baseline.densifications == 0
            && self.coalesced.coalesced_batches > 0
    }

    /// Serializes the report in the repo's `BENCH_*.json` style.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"label\": \"{label}\",");
        let _ = writeln!(
            out,
            "  \"config\": {{ \"buckets\": {}, \"cuts\": {}, \"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \"burst\": {}, \"spec_queries\": {}, \"window_ms\": {}, \"max_batch\": {}, \"workers\": {}, \"eps_request\": {}, \"tenant_budget\": {}, \"seed\": {} }},",
            self.config.buckets,
            self.config.cuts,
            self.config.tenants,
            self.config.clients,
            self.config.requests_per_client,
            self.config.burst,
            self.config.spec_queries,
            self.config.window.as_secs_f64() * 1e3,
            self.config.max_batch,
            self.config.workers,
            self.config.eps_request,
            self.config.tenant_budget,
            self.config.seed,
        );
        let _ = writeln!(
            out,
            "  \"units\": {{ \"throughput\": \"granted requests (and queries) per second\", \"error\": \"mean squared per-query error vs exact answers at eps_request\" }},"
        );
        let _ = writeln!(out, "  \"runs\": [");
        for (i, run) in [&self.coalesced, &self.baseline].into_iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"mode\": \"{}\", \"wall_seconds\": {:.6}, \"answered\": {}, \"rejected\": {}, \"queries_answered\": {}, \"requests_per_second\": {:.3}, \"queries_per_second\": {:.3}, \"mean_squared_error\": {:.6e}, \"batches\": {}, \"coalesced_batches\": {}, \"cross_eps_batches\": {}, \"mean_occupancy\": {:.3}, \"max_occupancy\": {}, \"cache_misses\": {}, \"cache_hits\": {}, \"peak_queue_depth\": {}, \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \"overspend\": {}, \"delta_overspend\": {}, \"densifications\": {} }}{}",
                run.mode,
                run.wall_seconds,
                run.answered,
                run.rejected,
                run.queries_answered,
                run.requests_per_second,
                run.queries_per_second,
                run.mean_squared_error,
                run.batches,
                run.coalesced_batches,
                run.cross_eps_batches,
                run.mean_occupancy,
                run.max_occupancy,
                run.cache_misses,
                run.cache_hits,
                run.peak_queue_depth,
                run.p50_latency_ms,
                run.p99_latency_ms,
                run.overspend,
                run.delta_overspend,
                run.densifications,
                if i == 0 { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"comparison\": {{ \"throughput_speedup\": {:.3}, \"error_ratio_baseline_over_coalesced\": {:.3}, \"strictly_faster\": {}, \"passes_smoke\": {} }}",
            self.speedup(),
            self.error_ratio(),
            self.speedup() > 1.0,
            self.passes_smoke(),
        );
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json(label))
    }
}

/// Runs the full comparison: the same trace through the coalescing server
/// and the per-query baseline.
pub fn run_serving_bench(cfg: &ServingConfig) -> ServingReport {
    let trace = build_trace(cfg);
    let coalesced = run_serving_mode(cfg, &trace, ServingMode::Coalescing);
    let baseline = run_serving_mode(cfg, &trace, ServingMode::Baseline);

    if !cfg.quiet {
        let mut table = TableWriter::new(format!(
            "Serving load harness — {} clients × {} requests, {} tenants, ε = {} per release",
            cfg.clients, cfg.requests_per_client, cfg.tenants, cfg.eps_request
        ));
        table.header(&[
            "mode",
            "wall s",
            "req/s",
            "mse",
            "batches",
            "coalesced",
            "occupancy",
            "p99 ms",
        ]);
        for run in [&coalesced, &baseline] {
            table.row(vec![
                run.mode.to_string(),
                format!("{:.3}", run.wall_seconds),
                format!("{:.1}", run.requests_per_second),
                format!("{:.3e}", run.mean_squared_error),
                run.batches.to_string(),
                run.coalesced_batches.to_string(),
                format!("{:.2}", run.mean_occupancy),
                format!("{:.1}", run.p99_latency_ms),
            ]);
        }
        println!("{}", table.render());
    }

    ServingReport {
        config: cfg.clone(),
        coalesced,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServingConfig {
        ServingConfig {
            buckets: 64,
            cuts: 8,
            tenants: 2,
            clients: 2,
            requests_per_client: 8,
            burst: 8,
            spec_queries: 4,
            max_batch: 4,
            workers: 2,
            tenant_budget: 1.5, // 6 grants per tenant out of 8 requests
            quiet: true,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic_and_mixed() {
        let cfg = tiny();
        let a = build_trace(&cfg);
        let b = build_trace(&cfg);
        assert_eq!(a.data, b.data);
        assert_eq!(a.per_client.len(), 2);
        for (ra, rb) in a.per_client[0].iter().zip(&b.per_client[0]) {
            assert_eq!(ra.spec, rb.spec);
            assert_eq!(ra.exact, rb.exact);
        }
        // Both spec families appear.
        let specs: Vec<_> = a.per_client.iter().flatten().collect();
        assert!(specs
            .iter()
            .any(|r| matches!(r.spec, QuerySpec::Ranges { .. })));
        assert!(specs
            .iter()
            .any(|r| matches!(r.spec, QuerySpec::Prefixes { .. })));
        // Tenants round-robin.
        assert!(specs.iter().any(|r| r.tenant == 0));
        assert!(specs.iter().any(|r| r.tenant == 1));
    }

    #[test]
    fn bench_runs_and_reports() {
        let cfg = tiny();
        let report = run_serving_bench(&cfg);

        // Grant counts are mode-independent: floor(1.5 / 0.25) = 6 per
        // tenant, 2 tenants, so 12 answered + 4 rejected in both runs.
        assert_eq!(report.coalesced.answered, 12);
        assert_eq!(report.baseline.answered, 12);
        assert_eq!(report.coalesced.rejected, 4);
        assert_eq!(report.baseline.rejected, 4);

        // The hard invariants of the harness.
        assert!(!report.coalesced.overspend);
        assert!(!report.baseline.overspend);
        assert_eq!(report.coalesced.densifications, 0);
        assert_eq!(report.baseline.densifications, 0);
        assert!(report.coalesced.coalesced_batches > 0);
        assert_eq!(report.baseline.coalesced_batches, 0);
        assert!(report.baseline.batches >= 16);
        assert!(report.coalesced.batches < report.baseline.batches);
        assert!(report.coalesced.mean_squared_error.is_finite());
        assert!(report.coalesced.mean_squared_error > 0.0);

        let json = report.to_json("test");
        assert!(json.contains("\"runs\""));
        assert!(json.contains("\"throughput_speedup\""));
        assert!(json.contains("\"mode\": \"coalescing\""));
        assert!(json.contains("\"mode\": \"per-query baseline\""));
    }
}
