//! Figure 3: effect of the decomposition rank `r = ratio·rank(W)` on
//! LRM's accuracy and decomposition time (Search Logs dataset).

use crate::experiments::sweep::{format_err, workload_at};
use crate::experiments::ExperimentContext;
use crate::mechanisms::MechanismKind;
use crate::params;
use crate::report::{CsvRecord, TableWriter};
use crate::runner::{compile_timed, measure};
use lrm_core::decomposition::TargetRank;
use lrm_workload::datasets::Dataset;
use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};

/// Runs the Fig. 3 sweep and returns the flat records.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let m = ctx.default_queries();
    let n = ctx.default_domain();
    let dataset = Dataset::SearchLogs;
    let data = dataset.load_merged(n).expect("n is below dataset size");

    let wrelated =
        WRelated::with_ratio(params::DEFAULT_S_RATIO, m, n).expect("default ratio is valid");
    let generators: [(&str, &dyn WorkloadGenerator); 3] = [
        ("WDiscrete", &WDiscrete::default()),
        ("WRange", &WRange),
        ("WRelated", &wrelated),
    ];

    let mut records = Vec::new();
    for (wname, generator) in generators {
        let workload = workload_at(generator, m, n, ctx, &format!("fig3/gen/{wname}"));
        let rank = workload.rank();
        let mut table = TableWriter::new(format!(
            "Fig 3 — LRM error & time vs r (= ratio·rank(W)); {wname}, rank(W)={rank}, m={m}, n={n}"
        ));
        table.header(&[
            "ratio",
            "r",
            "eps=1",
            "eps=0.1",
            "eps=0.01",
            "decomp time (s)",
        ]);

        for &ratio in &params::RANK_RATIOS {
            let r = ((ratio * rank as f64).round() as usize).max(1);
            let mut row = vec![format!("{ratio:.1}"), r.to_string()];
            // One decomposition per (workload, r); reused across ε.
            let mut lrm_config = ctx.lrm_config_for(params::DEFAULT_GAMMA, ratio, m, n);
            lrm_config.target_rank = TargetRank::Exact(r);
            let (mechanism, compile_seconds) =
                match compile_timed(ctx.engine(), MechanismKind::Lrm, &workload, &lrm_config) {
                    Ok(pair) => pair,
                    Err(e) => {
                        row.push(format!("err:{e}"));
                        table.row(row);
                        continue;
                    }
                };
            for &eps in &params::EPSILONS {
                let tag = format!("fig3/{wname}/ratio={ratio}/eps={eps}");
                match measure(
                    &mechanism, &workload, &data, eps, ctx.trials, ctx.seed, &tag,
                ) {
                    Ok((analytic, empirical, answer_seconds)) => {
                        row.push(format_err(empirical));
                        records.push(CsvRecord {
                            figure: "fig3".into(),
                            dataset: dataset.name().into(),
                            workload: wname.into(),
                            mechanism: "LRM".into(),
                            x_name: "ratio".into(),
                            x: ratio,
                            epsilon: eps,
                            analytic_avg_error: analytic,
                            empirical_avg_error: empirical,
                            compile_seconds,
                            answer_seconds,
                        });
                    }
                    Err(e) => row.push(format!("err:{e}")),
                }
            }
            row.push(format!("{compile_seconds:.2}"));
            table.row(row);
        }
        if !ctx.quiet {
            println!("{}", table.render());
        }
        // Each (workload, r) strategy was already reused across all three
        // ε — nothing further in the run revisits it.
        ctx.engine().clear_cache();
    }
    records
}
