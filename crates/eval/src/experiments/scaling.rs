//! Domain-scaling sweep: the structured (sparse/implicit) workload path
//! against the forced-dense path, on identical workloads.
//!
//! This is the demonstration behind the structure-aware operator refactor:
//! a prefix or range workload compiles through
//! `Engine::compile(MechanismKind::Lrm)` at domain sizes where the dense
//! path is already paying for a dense SVD, dense `W·Lᵀ`/`Bᵀ·W` GEMMs and
//! an `m×n` materialization per compile. The sweep records compile
//! wall-time and closed-form expected error for both paths and the
//! operator densification counter around the structured compile, and
//! serializes a `BENCH_*.json`-style report.

use crate::report::TableWriter;
use lrm_core::decomposition::{DecompositionConfig, TargetRank};
use lrm_core::engine::{CompileOptions, Engine, MechanismKind};
use lrm_dp::rng::derive_rng;
use lrm_linalg::operator::densification_count;
use lrm_opt::{AlmSchedule, NesterovConfig};
use lrm_workload::generators::{WPrefix, WRange, WRangeCoarse, WorkloadGenerator};
use lrm_workload::Workload;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Which structured workload family to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingFamily {
    /// Evenly spread prefix sums (implicit intervals, deterministic).
    Prefix,
    /// Uniform random range counts (implicit intervals, seeded).
    Range,
    /// Range counts snapped to 32 boundary cuts — `rank(W) ≤ 32` however
    /// many queries are asked, the `m ≫ rank` regime where the workload
    /// GEMMs (`W·Lᵀ`, `Bᵀ·W`) dominate the solver and the structured
    /// operators pay off the most.
    RangeCoarse,
}

impl ScalingFamily {
    /// Family name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScalingFamily::Prefix => "WPrefix",
            ScalingFamily::Range => "WRange",
            ScalingFamily::RangeCoarse => "WRangeCoarse",
        }
    }

    fn workload(&self, m: usize, n: usize, seed: u64) -> Workload {
        let mut rng = derive_rng(seed, 0x5ca1e);
        match self {
            ScalingFamily::Prefix => WPrefix.generate(m, n, &mut rng),
            ScalingFamily::Range => WRange.generate(m, n, &mut rng),
            ScalingFamily::RangeCoarse => WRangeCoarse { cuts: 32 }.generate(m, n, &mut rng),
        }
        .expect("sweep dimensions are valid")
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Domain sizes to sweep (default 256 → 8192).
    pub domain_sizes: Vec<usize>,
    /// Query count `m`, fixed across the sweep.
    pub queries: usize,
    /// Workload family.
    pub family: ScalingFamily,
    /// Largest `n` the dense path is attempted on; beyond it only the
    /// structured path runs (that is the point of the sweep).
    pub dense_cap: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Suppress table printing.
    pub quiet: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            domain_sizes: vec![256, 512, 1024, 2048, 4096, 8192],
            queries: 512,
            family: ScalingFamily::RangeCoarse,
            dense_cap: 4096,
            seed: 20120827,
            quiet: false,
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Domain size `n`.
    pub n: usize,
    /// Query count `m`.
    pub m: usize,
    /// Representation of the structured workload (`intervals`/`sparse`).
    pub structure: &'static str,
    /// Wall-clock seconds of the structured-path LRM compile.
    pub structured_seconds: f64,
    /// Expected average error of the structured-path strategy at the
    /// engine's reference ε.
    pub structured_error: f64,
    /// Decomposition rank of the structured-path strategy.
    pub structured_rank: usize,
    /// Operator densifications observed during the structured compile
    /// (must stay 0 — asserted process-wide by the CI smoke run).
    pub densifications: u64,
    /// Wall-clock seconds of the forced-dense compile; `None` above the
    /// dense cap.
    pub dense_seconds: Option<f64>,
    /// Expected average error of the dense-path strategy.
    pub dense_error: Option<f64>,
}

/// The full sweep outcome.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Family swept.
    pub family: &'static str,
    /// Fixed query count.
    pub queries: usize,
    /// Reference ε the errors are quoted at.
    pub reference_eps: f64,
    /// One entry per domain size.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// Serializes the report in the repo's `BENCH_*.json` style.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"label\": \"{label}\",");
        let _ = writeln!(out, "  \"family\": \"{}\",", self.family);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"reference_eps\": {},", self.reference_eps);
        let _ = writeln!(
            out,
            "  \"units\": {{ \"seconds\": \"wall-clock per Engine::compile(Lrm)\", \"error\": \"expected avg squared error at reference_eps\" }},"
        );
        let _ = writeln!(out, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let dense_seconds = p
                .dense_seconds
                .map_or("null".to_string(), |s| format!("{s:.6}"));
            let dense_error = p
                .dense_error
                .map_or("null".to_string(), |e| format!("{e:.6e}"));
            let speedup = match p.dense_seconds {
                Some(d) if p.structured_seconds > 0.0 => {
                    format!("{:.3}", d / p.structured_seconds)
                }
                _ => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "    {{ \"n\": {}, \"m\": {}, \"structure\": \"{}\", \"structured_seconds\": {:.6}, \"structured_error\": {:.6e}, \"structured_rank\": {}, \"densifications\": {}, \"dense_seconds\": {}, \"dense_error\": {}, \"speedup\": {} }}{}",
                p.n,
                p.m,
                p.structure,
                p.structured_seconds,
                p.structured_error,
                p.structured_rank,
                p.densifications,
                dense_seconds,
                dense_error,
                speedup,
                if i + 1 < self.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json(label))
    }

    /// Whether the structured path beat the dense path at every point with
    /// `n >= threshold` where both ran; `None` when no such comparison
    /// exists (so a dense-capped sweep cannot claim a vacuous win).
    pub fn structured_strictly_faster_from(&self, threshold: usize) -> Option<bool> {
        let mut compared = false;
        for p in self.points.iter().filter(|p| p.n >= threshold) {
            if let Some(d) = p.dense_seconds {
                compared = true;
                if p.structured_seconds >= d {
                    return Some(false);
                }
            }
        }
        compared.then_some(true)
    }
}

/// The sweep's **fixed-work** solver budget.
///
/// The ALM trajectory at small β is chaotic: a last-bit arithmetic
/// difference between the fused dense products and the split structured
/// products can change *how many* outer iterations a run takes, which
/// would turn a kernel comparison into a convergence lottery. Zeroing
/// every early-exit tolerance (γ, `inner_tol`, the Nesterov χ) pins both
/// paths to exactly `max_outer_iters × inner_alternations ×
/// nesterov.max_iters` of structural work, so the wall-time difference
/// measures precisely what the refactor changed: the SVD/initializer and
/// the `W`-products.
pub fn scaling_lrm_config() -> DecompositionConfig {
    DecompositionConfig {
        target_rank: TargetRank::RatioOfRank(crate::params::DEFAULT_RANK_RATIO),
        gamma: 0.0,
        schedule: AlmSchedule::default(),
        max_outer_iters: 12,
        inner_alternations: 3,
        inner_tol: 0.0,
        nesterov: NesterovConfig {
            max_iters: 10,
            tol_per_entry: 0.0,
            ..NesterovConfig::default()
        },
        polish_iters: 0,
    }
}

/// Compiles `workload` as LRM through a fresh engine and returns
/// `(compile seconds, expected avg error, strategy rank)`.
fn compile_lrm(workload: &Workload) -> (f64, f64, usize) {
    // A fresh engine per compile: the sweep measures the strategy search,
    // never a cache hit; no spill dir, so no disk I/O either.
    let engine = Engine::builder().build();
    let options = CompileOptions::with_decomposition(scaling_lrm_config());
    let t0 = Instant::now();
    let compiled = engine
        .compile(workload, MechanismKind::Lrm, &options)
        .expect("LRM compiles on structured families");
    let seconds = t0.elapsed().as_secs_f64();
    let meta = compiled.meta();
    (
        seconds,
        meta.expected_avg_error,
        meta.strategy_rank.unwrap_or(0),
    )
}

/// Runs the sweep.
pub fn run_scaling_sweep(cfg: &ScalingConfig) -> ScalingReport {
    let mut points = Vec::new();
    let mut table = TableWriter::new(format!(
        "Domain scaling — {} (m = {}), structured vs dense LRM compile",
        cfg.family.name(),
        cfg.queries
    ));
    table.header(&[
        "n",
        "structure",
        "structured s",
        "dense s",
        "speedup",
        "densify",
    ]);

    for &n in &cfg.domain_sizes {
        let structured = cfg.family.workload(cfg.queries, n, cfg.seed);
        let structure = structured.structure().label();

        let densify_before = densification_count();
        let (structured_seconds, structured_error, structured_rank) = compile_lrm(&structured);
        let densifications = densification_count() - densify_before;

        let (dense_seconds, dense_error) = if n <= cfg.dense_cap {
            // Force the dense representation of the *same* matrix: same
            // fingerprint, same compile, different code path.
            let dense = structured.to_dense_workload();
            let (secs, err, _) = compile_lrm(&dense);
            (Some(secs), Some(err))
        } else {
            (None, None)
        };

        table.row(vec![
            n.to_string(),
            structure.to_string(),
            format!("{structured_seconds:.3}"),
            dense_seconds.map_or("—".into(), |s| format!("{s:.3}")),
            dense_seconds.map_or("—".into(), |s| {
                format!("{:.2}x", s / structured_seconds.max(1e-12))
            }),
            densifications.to_string(),
        ]);
        points.push(ScalingPoint {
            n,
            m: cfg.queries,
            structure,
            structured_seconds,
            structured_error,
            structured_rank,
            densifications,
            dense_seconds,
            dense_error,
        });
    }

    if !cfg.quiet {
        println!("{}", table.render());
    }
    ScalingReport {
        family: cfg.family.name(),
        queries: cfg.queries,
        reference_eps: 1.0,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_runs_and_serializes() {
        let cfg = ScalingConfig {
            domain_sizes: vec![64, 128],
            queries: 16,
            dense_cap: 128,
            quiet: true,
            ..ScalingConfig::default()
        };
        let report = run_scaling_sweep(&cfg);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.structured_seconds > 0.0);
            assert!(p.structured_error.is_finite() && p.structured_error > 0.0);
            assert!(p.dense_seconds.is_some());
            // Same workload, same fixed-work budget → comparable strategy
            // quality on both paths (trajectories differ in rounding, so
            // only order-of-magnitude agreement is guaranteed).
            let d = p.dense_error.unwrap();
            assert!(
                p.structured_error <= 4.0 * d && d <= 4.0 * p.structured_error,
                "structured {} vs dense {d}",
                p.structured_error
            );
        }
        let json = report.to_json("test");
        assert!(json.contains("\"points\""));
        assert!(json.contains("\"structure\": \"intervals\""));
        // Dense path skipped above the cap.
        let capped = run_scaling_sweep(&ScalingConfig {
            domain_sizes: vec![128],
            queries: 8,
            dense_cap: 64,
            quiet: true,
            ..ScalingConfig::default()
        });
        assert!(capped.points[0].dense_seconds.is_none());
        assert!(capped.to_json("x").contains("\"dense_seconds\": null"));
    }

    #[test]
    fn strictly_faster_threshold_logic() {
        let point = |n: usize, s: f64, d: Option<f64>| ScalingPoint {
            n,
            m: 8,
            structure: "intervals",
            structured_seconds: s,
            structured_error: 1.0,
            structured_rank: 2,
            densifications: 0,
            dense_seconds: d,
            dense_error: d.map(|_| 1.0),
        };
        let report = ScalingReport {
            family: "WPrefix",
            queries: 8,
            reference_eps: 1.0,
            points: vec![
                point(512, 2.0, Some(1.0)),  // slower below threshold: ignored
                point(1024, 1.0, Some(1.5)), // faster
                point(2048, 1.0, None),      // dense skipped: ignored
            ],
        };
        assert_eq!(report.structured_strictly_faster_from(1024), Some(true));
        assert_eq!(report.structured_strictly_faster_from(512), Some(false));
        // No dense comparison at all → no claim, not a vacuous win.
        assert_eq!(report.structured_strictly_faster_from(2048), None);
    }

    #[test]
    fn range_family_runs() {
        let cfg = ScalingConfig {
            domain_sizes: vec![64],
            queries: 12,
            family: ScalingFamily::Range,
            dense_cap: 64,
            quiet: true,
            ..ScalingConfig::default()
        };
        let report = run_scaling_sweep(&cfg);
        assert_eq!(report.family, "WRange");
        assert_eq!(report.points[0].structure, "intervals");
    }
}
