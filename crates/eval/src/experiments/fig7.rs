//! Figure 7: LM/WM/HM/LRM vs query count `m` on the WRange workload,
//! ε = 0.1, three datasets.

use crate::experiments::sweep::{run_query_sweep, SweepPlan};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::report::CsvRecord;
use lrm_workload::generators::WRange;

/// Runs the Fig. 7 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let plan = SweepPlan {
        figure: "fig7",
        title: "Fig 7 — error vs query count m (WRange)",
        x_name: "m",
        mechanisms: &mechanisms::FIG7_SET,
        workload_name: "WRange",
    };
    run_query_sweep(&plan, &WRange, ctx)
}
