//! Per-figure experiment drivers.

pub mod ablations;
pub mod chaos;
pub mod evented;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gaussian;
pub mod scaling;
pub mod serving;
mod sweep;
pub mod warm_start;

use crate::params;
use lrm_core::decomposition::{DecompositionConfig, TargetRank};
use lrm_core::engine::Engine;
use std::path::PathBuf;
use std::sync::Arc;

pub use sweep::{run_domain_sweep, run_query_sweep, SweepPlan};

/// Shared experiment configuration, usually parsed from CLI arguments.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Run the paper's exact parameter grid (slow) instead of the
    /// scaled-down default.
    pub full: bool,
    /// Monte-Carlo repetitions per cell (the paper uses 20).
    pub trials: usize,
    /// Master seed for workload generation and noise.
    pub seed: u64,
    /// When set, CSV files are written under this directory.
    pub csv_dir: Option<PathBuf>,
    /// Suppress table printing (used by tests and benches).
    pub quiet: bool,
    /// The serving engine all cells compile through. Shared (`Arc`) so
    /// clones of the context reuse one strategy cache within a figure;
    /// the figure drivers call [`Engine::clear_cache`] once a workload's
    /// cells are done, so a full grid run never retains every strategy it
    /// ever built.
    pub engine: Arc<Engine>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            full: false,
            trials: params::DEFAULT_TRIALS,
            seed: 20120827, // VLDB 2012 opening day
            csv_dir: None,
            quiet: false,
            engine: Arc::new(Engine::default()),
        }
    }
}

impl ExperimentContext {
    /// Parses `--full`, `--trials K`, `--seed S`, `--csv DIR`, `--quiet`
    /// from an iterator of arguments (excluding the program name).
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut ctx = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => ctx.full = true,
                "--quiet" => ctx.quiet = true,
                "--trials" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--trials needs a value".to_string())?;
                    ctx.trials = v
                        .parse()
                        .map_err(|_| format!("invalid --trials value: {v}"))?;
                }
                "--seed" => {
                    let v = args.next().ok_or_else(|| "--seed needs a value".to_string())?;
                    ctx.seed = v.parse().map_err(|_| format!("invalid --seed value: {v}"))?;
                }
                "--csv" => {
                    let v = args.next().ok_or_else(|| "--csv needs a directory".to_string())?;
                    ctx.csv_dir = Some(PathBuf::from(v));
                }
                other => return Err(format!("unknown argument: {other} (try --full, --trials K, --seed S, --csv DIR, --quiet)")),
            }
        }
        Ok(ctx)
    }

    /// Domain-size grid for Figs. 4–6.
    pub fn domain_sizes(&self) -> Vec<usize> {
        if self.full {
            params::DOMAIN_SIZES_FULL.to_vec()
        } else {
            params::DOMAIN_SIZES_QUICK.to_vec()
        }
    }

    /// Query-count grid for Figs. 7–8.
    pub fn query_sizes(&self) -> Vec<usize> {
        if self.full {
            params::QUERY_SIZES_FULL.to_vec()
        } else {
            params::QUERY_SIZES_QUICK.to_vec()
        }
    }

    /// Default query count for the n sweeps.
    pub fn default_queries(&self) -> usize {
        if self.full {
            params::DEFAULT_QUERIES_FULL
        } else {
            params::DEFAULT_QUERIES_QUICK
        }
    }

    /// Default domain size for the m/γ/r sweeps.
    pub fn default_domain(&self) -> usize {
        if self.full {
            params::DEFAULT_DOMAIN_FULL
        } else {
            params::DEFAULT_DOMAIN_QUICK
        }
    }

    /// The engine the harness compiles every mechanism through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Largest domain MM is attempted on (Appendix B is O(n³) per step).
    pub fn mm_domain_cap(&self) -> usize {
        if self.full {
            params::MM_DOMAIN_CAP_FULL
        } else {
            params::MM_DOMAIN_CAP_QUICK
        }
    }

    /// LRM solver budgets adapted to problem size: the figure grids span
    /// two orders of magnitude in `m·n`, and the full-accuracy budgets
    /// that polish a 3×4 example would take hours at n = 8192.
    pub fn lrm_config_for(
        &self,
        gamma: f64,
        rank_ratio: f64,
        m: usize,
        n: usize,
    ) -> DecompositionConfig {
        let size = m * n;
        let base = DecompositionConfig {
            gamma,
            target_rank: TargetRank::RatioOfRank(rank_ratio),
            ..DecompositionConfig::default()
        };
        if size <= 1 << 14 {
            base
        } else if size <= 1 << 18 {
            DecompositionConfig {
                max_outer_iters: 80,
                inner_alternations: 4,
                nesterov: lrm_opt::NesterovConfig {
                    max_iters: 40,
                    ..lrm_opt::NesterovConfig::default()
                },
                ..base
            }
        } else {
            DecompositionConfig {
                max_outer_iters: 50,
                inner_alternations: 3,
                nesterov: lrm_opt::NesterovConfig {
                    max_iters: 25,
                    ..lrm_opt::NesterovConfig::default()
                },
                ..base
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let ctx = ExperimentContext::from_args(
            [
                "--full", "--trials", "5", "--seed", "42", "--csv", "/tmp/x", "--quiet",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(ctx.full);
        assert_eq!(ctx.trials, 5);
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert!(ctx.quiet);

        assert!(ExperimentContext::from_args(["--bogus".to_string()].into_iter()).is_err());
        assert!(ExperimentContext::from_args(
            ["--trials".to_string(), "x".to_string()].into_iter()
        )
        .is_err());
    }

    #[test]
    fn grids_scale_with_full() {
        let quick = ExperimentContext::default();
        let full = ExperimentContext {
            full: true,
            ..ExperimentContext::default()
        };
        assert!(full.domain_sizes().len() > quick.domain_sizes().len());
        assert!(full.default_queries() > quick.default_queries());
        assert!(full.mm_domain_cap() >= quick.mm_domain_cap());
    }

    #[test]
    fn lrm_budgets_shrink_with_size() {
        let ctx = ExperimentContext::default();
        let small = ctx.lrm_config_for(0.01, 1.2, 8, 16);
        let large = ctx.lrm_config_for(0.01, 1.2, 1024, 8192);
        assert!(small.max_outer_iters > large.max_outer_iters);
        assert!(small.nesterov.max_iters > large.nesterov.max_iters);
    }
}
