//! Figure 8: LM/WM/HM/LRM vs query count `m` on the WRelated workload,
//! ε = 0.1, three datasets.

use crate::experiments::sweep::{run_sweep, workload_at, SweepPlan, SweepPoint};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::params;
use crate::report::CsvRecord;
use lrm_workload::generators::WRelated;

/// Runs the Fig. 8 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let n = ctx.default_domain_for_query_sweep();
    let plan = SweepPlan {
        figure: "fig8",
        title: "Fig 8 — error vs query count m (WRelated)",
        x_name: "m",
        mechanisms: &mechanisms::FIG7_SET,
        workload_name: "WRelated",
    };
    // s tracks m: s = ratio·min(m, n) as in the paper's generator, so the
    // workload's rank stays a fixed fraction of m across the sweep.
    let points: Vec<SweepPoint> = ctx
        .query_sizes()
        .into_iter()
        .map(|m| {
            let generator = WRelated::with_ratio(params::DEFAULT_S_RATIO, m, n)
                .expect("default ratio is valid");
            SweepPoint {
                x: m as f64,
                m,
                n,
                workload: workload_at(&generator, m, n, ctx, &format!("fig8/gen/m={m}")),
            }
        })
        .collect();
    run_sweep(&plan, points, ctx)
}
