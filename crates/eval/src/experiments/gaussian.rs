//! Cross-ε coalescing under approximate DP: the δ-class scheduler
//! against an ε-keyed one on the same mixed-ε Gaussian trace (ISSUE 8
//! tentpole measurement, `BENCH_8.json`).
//!
//! The pure serving bench ([`crate::experiments::serving`]) measures
//! coalescing against *per-query* serving; the question here is sharper:
//! given that you coalesce, what does the Gaussian mechanism's closure
//! under addition buy you? A Laplace scheduler must key batches on ε —
//! one noise scale per data pass — so a mixed-ε trace fragments its
//! windows. A Gaussian scheduler keys on the δ-class only: one base draw
//! calibrated at the batch's largest ε serves every member, and stricter
//! members add an independent variance top-up. Both runs here use the
//! same window, the same batch cap, the same (ε, δ)-ledgers, and the
//! same mixed-ε trace; the only difference is
//! [`coalesce_across_eps`](lrm_server::server::ServerBuilder::coalesce_across_eps).
//!
//! The acceptance gate: strictly higher throughput for cross-ε
//! coalescing, at least one cross-ε batch (the fragmented run must have
//! none), zero ε *or* δ over-spend anywhere, zero densifications.

use crate::experiments::serving::{
    build_trace, run_serving_mode, ServingConfig, ServingMode, ServingRunStats,
};
use crate::report::TableWriter;
use std::fmt::Write as _;
use std::path::Path;

/// The two-run comparison the `gaussian` binary reports.
#[derive(Debug, Clone)]
pub struct GaussianReport {
    /// Configuration echo (must have `noise_delta > 0`).
    pub config: ServingConfig,
    /// The cross-ε (δ-class keyed) coalescing run.
    pub coalesced: ServingRunStats,
    /// The ε-keyed fragmented run.
    pub fragmented: ServingRunStats,
}

impl GaussianReport {
    /// Cross-ε throughput over ε-fragmented throughput (granted
    /// requests per second).
    pub fn speedup(&self) -> f64 {
        self.coalesced.requests_per_second / self.fragmented.requests_per_second.max(1e-12)
    }

    /// The acceptance gate (see module docs).
    pub fn passes_smoke(&self) -> bool {
        self.speedup() > 1.0
            && self.coalesced.cross_eps_batches > 0
            && self.fragmented.cross_eps_batches == 0
            && !self.coalesced.overspend
            && !self.fragmented.overspend
            && !self.coalesced.delta_overspend
            && !self.fragmented.delta_overspend
            && self.coalesced.densifications == 0
            && self.fragmented.densifications == 0
    }

    /// Serializes the report in the repo's `BENCH_*.json` style.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"label\": \"{label}\",");
        let levels = self
            .config
            .eps_levels
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  \"config\": {{ \"buckets\": {}, \"cuts\": {}, \"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \"burst\": {}, \"spec_queries\": {}, \"window_ms\": {}, \"max_batch\": {}, \"workers\": {}, \"eps_levels\": [{}], \"noise_delta\": {:e}, \"tenant_budget\": {}, \"tenant_delta\": {:e}, \"seed\": {} }},",
            self.config.buckets,
            self.config.cuts,
            self.config.tenants,
            self.config.clients,
            self.config.requests_per_client,
            self.config.burst,
            self.config.spec_queries,
            self.config.window.as_secs_f64() * 1e3,
            self.config.max_batch,
            self.config.workers,
            levels,
            self.config.noise_delta,
            self.config.tenant_budget,
            self.config.tenant_delta,
            self.config.seed,
        );
        let _ = writeln!(
            out,
            "  \"units\": {{ \"throughput\": \"granted (eps, delta) releases per second\", \"error\": \"mean squared per-query error vs exact answers at each release's own budget\" }},"
        );
        let _ = writeln!(out, "  \"runs\": [");
        for (i, run) in [&self.coalesced, &self.fragmented].into_iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"mode\": \"{}\", \"wall_seconds\": {:.6}, \"answered\": {}, \"rejected\": {}, \"queries_answered\": {}, \"requests_per_second\": {:.3}, \"queries_per_second\": {:.3}, \"mean_squared_error\": {:.6e}, \"batches\": {}, \"coalesced_batches\": {}, \"cross_eps_batches\": {}, \"mean_occupancy\": {:.3}, \"max_occupancy\": {}, \"cache_misses\": {}, \"cache_hits\": {}, \"peak_queue_depth\": {}, \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \"overspend\": {}, \"delta_overspend\": {}, \"densifications\": {} }}{}",
                run.mode,
                run.wall_seconds,
                run.answered,
                run.rejected,
                run.queries_answered,
                run.requests_per_second,
                run.queries_per_second,
                run.mean_squared_error,
                run.batches,
                run.coalesced_batches,
                run.cross_eps_batches,
                run.mean_occupancy,
                run.max_occupancy,
                run.cache_misses,
                run.cache_hits,
                run.peak_queue_depth,
                run.p50_latency_ms,
                run.p99_latency_ms,
                run.overspend,
                run.delta_overspend,
                run.densifications,
                if i == 0 { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"comparison\": {{ \"throughput_speedup\": {:.3}, \"strictly_faster\": {}, \"cross_eps_batches\": {}, \"passes_smoke\": {} }}",
            self.speedup(),
            self.speedup() > 1.0,
            self.coalesced.cross_eps_batches,
            self.passes_smoke(),
        );
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json(label))
    }
}

/// Runs the full comparison: the same mixed-ε Gaussian trace through the
/// cross-ε coalescing server and the ε-fragmented one.
pub fn run_gaussian_bench(cfg: &ServingConfig) -> GaussianReport {
    assert!(
        cfg.is_gaussian(),
        "the gaussian bench needs noise_delta > 0"
    );
    assert!(
        cfg.eps_levels.len() > 1,
        "a single-ε trace cannot separate cross-ε coalescing from ε-keying"
    );
    let trace = build_trace(cfg);
    let coalesced = run_serving_mode(cfg, &trace, ServingMode::Coalescing);
    let fragmented = run_serving_mode(cfg, &trace, ServingMode::Fragmented);

    if !cfg.quiet {
        let mut table = TableWriter::new(format!(
            "Gaussian cross-ε coalescing — {} clients × {} requests, {} tenants, ε ∈ {{{:?}}}, δ = {:e}",
            cfg.clients, cfg.requests_per_client, cfg.tenants, cfg.eps_levels, cfg.noise_delta
        ));
        table.header(&[
            "mode",
            "wall s",
            "req/s",
            "mse",
            "batches",
            "cross-ε",
            "occupancy",
            "p99 ms",
        ]);
        for run in [&coalesced, &fragmented] {
            table.row(vec![
                run.mode.to_string(),
                format!("{:.3}", run.wall_seconds),
                format!("{:.1}", run.requests_per_second),
                format!("{:.3e}", run.mean_squared_error),
                run.batches.to_string(),
                run.cross_eps_batches.to_string(),
                format!("{:.2}", run.mean_occupancy),
                format!("{:.1}", run.p99_latency_ms),
            ]);
        }
        println!("{}", table.render());
    }

    GaussianReport {
        config: cfg.clone(),
        coalesced,
        fragmented,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny() -> ServingConfig {
        ServingConfig {
            buckets: 64,
            cuts: 8,
            tenants: 2,
            clients: 2,
            requests_per_client: 8,
            burst: 8,
            spec_queries: 4,
            max_batch: 4,
            workers: 2,
            window: Duration::from_millis(20),
            tenant_budget: 1.6,
            noise_delta: 1e-6,
            tenant_delta: 1e-4,
            eps_levels: vec![0.1, 0.25],
            quiet: true,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn gaussian_bench_runs_and_holds_its_invariants() {
        let report = run_gaussian_bench(&tiny());

        // The cross-ε run actually mixed ε inside batches; the
        // fragmented run never did.
        assert!(report.coalesced.cross_eps_batches > 0);
        assert_eq!(report.fragmented.cross_eps_batches, 0);
        // ε-keying can only fragment: never fewer batches.
        assert!(report.fragmented.batches >= report.coalesced.batches);
        // Privacy invariants hold in both runs.
        assert!(!report.coalesced.overspend && !report.fragmented.overspend);
        assert!(!report.coalesced.delta_overspend && !report.fragmented.delta_overspend);
        assert_eq!(report.coalesced.densifications, 0);
        assert_eq!(report.fragmented.densifications, 0);
        // Both runs released real answers with finite error.
        assert!(report.coalesced.answered > 0);
        assert!(report.fragmented.answered > 0);
        assert!(report.coalesced.mean_squared_error.is_finite());
        assert!(report.coalesced.mean_squared_error > 0.0);

        let json = report.to_json("test");
        assert!(json.contains("\"cross_eps_batches\""));
        assert!(json.contains("\"delta_overspend\""));
        assert!(json.contains("\"mode\": \"coalescing\""));
        assert!(json.contains("\"mode\": \"eps-fragmented\""));
    }

    #[test]
    #[should_panic(expected = "noise_delta")]
    fn pure_configs_are_rejected() {
        let cfg = ServingConfig {
            noise_delta: 0.0,
            ..tiny()
        };
        run_gaussian_bench(&cfg);
    }
}
