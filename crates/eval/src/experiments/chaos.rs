//! Crash–restart fault-injection harness for the fault-contained serving
//! runtime (the chaos gate of the failure model).
//!
//! One run drives real traffic through a sequence of short-lived
//! [`Server`] "processes" that all share one durable state directory —
//! every cycle builds a server over whatever the previous cycle left on
//! disk, injects one fault from a fixed rotation, serves a deterministic
//! request mix, shuts down, and (for the file-damage faults) corrupts the
//! on-disk state before the next cycle reopens it. The faults:
//!
//! | fault | mechanism |
//! |---|---|
//! | worker panic | `server::worker::panic` failpoint, one batch |
//! | compile stall | `core::alm::stall` failpoint + a compile deadline |
//! | settle crash | `server::settle::crash` failpoint (after noise, before settlement) |
//! | torn journal | truncate 1–3 bytes off one tenant's ε-journal |
//! | store truncate | chop the persisted farm queue in half |
//!
//! The failpoint faults need `debug_assertions` (they compile to no-ops
//! in release builds); the file-damage faults and the restart machinery
//! are real in every profile. Invariants checked across the whole run,
//! not per cycle:
//!
//! 1. **No over-spend, ever**: the ε (and, on a Gaussian run, the δ)
//!    each tenant *observed* being granted across every cycle never
//!    exceeds its registered budget — crashes between noise and
//!    settlement must over-charge, never under-charge, in **both**
//!    ledger columns (verified again at the end against the replayed
//!    ledgers).
//! 2. **No duplicate noise release**: every released `batch_index` is
//!    globally unique across all cycles, despite the pinned seed — the
//!    persisted noise epoch is what keeps the streams apart.
//! 3. **The pool never starves**: every cycle answers at least one
//!    request, whatever was injected.
//! 4. **Every ticket resolves**: no submission is left hanging.
//! 5. **Degraded mode is fast**: in stall cycles every release lands
//!    within twice the compile deadline.

use crate::experiments::scaling::scaling_lrm_config;
use lrm_core::engine::{CompileOptions, MechanismKind, NoiseFlavor};
use lrm_dp::rng::derive_rng;
use lrm_dp::{Budget, Epsilon};
use lrm_server::{QuerySpec, Server, ServerError};
use lrm_testing::{arm, reset, FailAction, FireRule};
use lrm_workload::{Attribute, Schema};
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One injected fault of the rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A worker panics mid-batch (supervision + quarantine path).
    WorkerPanic,
    /// Every compile stalls past the deadline (degraded-mode path).
    CompileStall,
    /// A worker crashes after drawing noise, before settling (the
    /// intent must replay as spent).
    SettleCrash,
    /// 1–3 bytes torn off the end of one tenant's budget journal.
    TornJournal,
    /// The persisted farm queue is chopped in half.
    StoreTruncate,
}

impl Fault {
    /// The fixed rotation; cycle `c` injects `ROTATION[c % 5]`.
    pub const ROTATION: [Fault; 5] = [
        Fault::WorkerPanic,
        Fault::CompileStall,
        Fault::SettleCrash,
        Fault::TornJournal,
        Fault::StoreTruncate,
    ];

    /// Short label for per-cycle reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::WorkerPanic => "worker-panic",
            Fault::CompileStall => "compile-stall",
            Fault::SettleCrash => "settle-crash",
            Fault::TornJournal => "torn-journal",
            Fault::StoreTruncate => "store-truncate",
        }
    }

    /// Whether this fault is delivered through a `lrm-testing` failpoint
    /// (and therefore needs a `debug_assertions` build to fire).
    pub fn needs_failpoints(&self) -> bool {
        matches!(
            self,
            Fault::WorkerPanic | Fault::CompileStall | Fault::SettleCrash
        )
    }
}

/// Chaos-run configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Crash–restart cycles (each builds one server over the shared
    /// state directory; the rotation repeats every 5).
    pub cycles: usize,
    /// Histogram buckets.
    pub buckets: usize,
    /// Boundary cuts the specs snap to.
    pub cuts: usize,
    /// Well-funded tenants (sized so traffic never exhausts them).
    pub big_tenants: usize,
    /// Requests per cycle, submitted sequentially.
    pub requests_per_cycle: usize,
    /// Queries per range-panel spec.
    pub spec_queries: usize,
    /// Per-release ε.
    pub eps_request: f64,
    /// Per-release δ. Zero (the default) runs the pure-DP harness;
    /// anything positive switches the servers to the Gaussian mechanism
    /// and makes every crash–restart invariant bind on *both* ledger
    /// columns — in particular a settle crash must replay its (ε, δ)
    /// intent as spent in both.
    pub noise_delta: f64,
    /// Budget of the deliberately under-funded tenant — it exhausts
    /// mid-run so every later cycle also exercises the refusal path.
    pub small_budget: f64,
    /// Worker threads per server.
    pub workers: usize,
    /// Compile deadline used in `CompileStall` cycles.
    pub stall_deadline: Duration,
    /// Master seed — pinned across cycles on purpose, so only the
    /// persisted noise epoch separates the cycles' noise streams.
    pub seed: u64,
    /// Arm failpoint faults (auto-disabled in release builds).
    pub inject_failpoints: bool,
    /// Suppress per-cycle printing.
    pub quiet: bool,
    /// Shared durable state directory; `None` picks a temp directory
    /// (removed afterwards).
    pub state_dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            cycles: 20,
            buckets: 128,
            cuts: 8,
            big_tenants: 3,
            requests_per_cycle: 10,
            spec_queries: 4,
            eps_request: 0.05,
            noise_delta: 0.0,
            small_budget: 0.3,
            workers: 3,
            stall_deadline: Duration::from_millis(400),
            seed: 20120827,
            inject_failpoints: true,
            quiet: false,
            state_dir: None,
        }
    }
}

impl ChaosConfig {
    /// The pinned CI smoke configuration: 6 cycles (one full rotation
    /// plus the reopen that verifies the last file-damage fault), small
    /// domain.
    pub fn smoke() -> Self {
        Self {
            cycles: 6,
            buckets: 64,
            big_tenants: 2,
            requests_per_cycle: 6,
            spec_queries: 3,
            small_budget: 0.15,
            workers: 2,
            ..Self::default()
        }
    }

    /// The Gaussian CI smoke: the first three rotation entries are the
    /// failpoint faults (worker panic, compile stall, settle crash), so
    /// three cycles cover every in-process fault — including the
    /// settle crash whose (ε, δ) intent must replay in both columns —
    /// without repeating the flavor-independent file-damage faults.
    pub fn gaussian_smoke() -> Self {
        Self {
            cycles: 3,
            noise_delta: 1e-6,
            ..Self::smoke()
        }
    }

    /// Whether this run uses the Gaussian mechanism ((ε, δ)-DP).
    pub fn is_gaussian(&self) -> bool {
        self.noise_delta > 0.0
    }

    fn big_name(t: usize) -> String {
        format!("tenant{t:02}")
    }

    /// Budget of the well-funded tenants: the whole run's demand with
    /// slack, so crashes (which over-charge) still leave head-room.
    fn big_budget(&self) -> f64 {
        (self.cycles * self.requests_per_cycle) as f64 * self.eps_request + 1.0
    }

    /// δ budget of the well-funded tenants: twice the whole run's δ
    /// demand, so replayed double-charges never refuse their traffic.
    fn big_delta(&self) -> f64 {
        (2 * self.cycles * self.requests_per_cycle) as f64 * self.noise_delta
    }

    /// δ budget of the under-funded tenant: generous, so it keeps
    /// exhausting on ε exactly like the pure harness.
    fn small_delta(&self) -> f64 {
        1e-3
    }

    /// A registration-shaped budget: pure ε, or (ε, δ) when Gaussian.
    fn budget(&self, eps: Epsilon, delta: f64) -> Budget {
        if self.is_gaussian() {
            Budget::approx(eps, delta).expect("valid chaos delta")
        } else {
            Budget::pure(eps)
        }
    }
}

/// What one cycle's client observed (accumulated inside `serve`).
#[derive(Debug, Default)]
struct CycleOutcome {
    answered: u64,
    refused: u64,
    quarantined: u64,
    degraded: u64,
    unresolved: u64,
    unexpected: u64,
    latency_violations: u64,
    /// `(tenant, ε, δ)` of every grant the client actually saw (δ is 0
    /// on a pure run).
    grants: Vec<(String, f64, f64)>,
    /// `batch_index` of every release (the noise-stream label).
    indices: Vec<u64>,
}

/// Whole-run outcome and invariant verdicts.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Cycles driven.
    pub cycles: usize,
    /// Whether failpoint faults were actually armed (debug builds only).
    pub failpoints_active: bool,
    /// Requests granted a release, across all cycles.
    pub answered: u64,
    /// Requests refused with a typed budget error.
    pub refused: u64,
    /// Requests refused because their shape was quarantined.
    pub quarantined: u64,
    /// Degraded (deadline-fallback) releases.
    pub degraded: u64,
    /// Worker respawns across all cycles.
    pub worker_respawns: u64,
    /// Ledger journals replayed by the final verification reopen.
    pub ledger_replays: u64,
    /// Tickets that never resolved (must be 0).
    pub unresolved_tickets: u64,
    /// Duplicate released batch indices across cycles (must be 0).
    pub duplicate_releases: u64,
    /// Errors outside the typed failure model (must be 0).
    pub unexpected_errors: u64,
    /// Tenants whose observed grants exceeded their budget (must be 0).
    pub overspent_tenants: u64,
    /// Tenants whose replayed ledger remembers *less* spend than the
    /// grants actually released (must be 0 — crashes over-charge, never
    /// under-charge).
    pub undercounted_tenants: u64,
    /// Tenants whose observed δ grants exceeded their δ budget (must be
    /// 0; always 0 on a pure run).
    pub delta_overspent_tenants: u64,
    /// Tenants whose replayed ledger remembers less δ spend than the
    /// grants actually released (must be 0; always 0 on a pure run).
    pub delta_undercounted_tenants: u64,
    /// Cycles that answered nothing (must be 0 — the pool never starves).
    pub starved_cycles: u64,
    /// Stall-cycle releases slower than 2× the compile deadline (must
    /// be 0).
    pub latency_violations: u64,
    /// Failpoint-fault cycles whose expected symptom never surfaced
    /// (must be 0 when failpoints are active — otherwise the harness is
    /// quietly testing nothing).
    pub missed_faults: u64,
    /// Parseable flight-recorder post-mortem dumps found under
    /// `state_dir/flightrec/` at the end of the run (the durable
    /// servers arm the recorder; every injected panic must dump one).
    pub postmortems: u64,
    /// Panic-fault cycles that left **no new parseable** post-mortem
    /// artifact behind (must be 0 when failpoints are active — a crash
    /// without a flight-recorder dump is an undiagnosable crash).
    pub missing_postmortems: u64,
}

impl ChaosReport {
    /// The acceptance gate over every invariant.
    pub fn passes(&self) -> bool {
        self.answered > 0
            && self.unresolved_tickets == 0
            && self.duplicate_releases == 0
            && self.unexpected_errors == 0
            && self.overspent_tenants == 0
            && self.undercounted_tenants == 0
            && self.delta_overspent_tenants == 0
            && self.delta_undercounted_tenants == 0
            && self.starved_cycles == 0
            && self.latency_violations == 0
            && (!self.failpoints_active || self.missed_faults == 0)
            && self.missing_postmortems == 0
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} cycles (failpoints {}): {} answered, {} refused, {} quarantined, {} degraded, \
             {} respawns, {} replays, {} postmortems; invariants — unresolved {}, duplicates {}, \
             unexpected {}, overspent {}/{}δ, undercounted {}/{}δ, starved {}, slow-degraded {}, \
             missed-faults {}, missing-postmortems {} => {}",
            self.cycles,
            if self.failpoints_active { "on" } else { "off" },
            self.answered,
            self.refused,
            self.quarantined,
            self.degraded,
            self.worker_respawns,
            self.ledger_replays,
            self.postmortems,
            self.unresolved_tickets,
            self.duplicate_releases,
            self.unexpected_errors,
            self.overspent_tenants,
            self.delta_overspent_tenants,
            self.undercounted_tenants,
            self.delta_undercounted_tenants,
            self.starved_cycles,
            self.latency_violations,
            self.missed_faults,
            self.missing_postmortems,
            if self.passes() { "PASS" } else { "FAIL" },
        )
    }
}

/// Runs the whole crash–restart chaos sequence.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let failpoints_active = cfg.inject_failpoints && cfg!(debug_assertions);
    if failpoints_active {
        // Injected panics are the behavior under test; suppress their
        // default backtrace spew but keep it for anything unexpected.
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !msg.contains("failpoint") {
                    default(info);
                }
            }));
        });
    }
    let owned_dir;
    let dir: &Path = match &cfg.state_dir {
        Some(d) => d,
        None => {
            owned_dir = std::env::temp_dir().join(format!(
                "lrm_chaos_{}_{:08x}",
                std::process::id(),
                cfg.seed
            ));
            &owned_dir
        }
    };
    let _ = std::fs::remove_dir_all(dir);

    let schema = Schema::single(
        Attribute::new("v", 0.0, cfg.buckets as f64, cfg.buckets).expect("valid attribute"),
    );
    let mut data_rng = derive_rng(cfg.seed, 0xda7a);
    let data: Vec<f64> = (0..cfg.buckets)
        .map(|_| data_rng.gen_range(0..500) as f64)
        .collect();
    let eps_request = Epsilon::new(cfg.eps_request).expect("positive eps");
    let request_budget = cfg.budget(eps_request, cfg.noise_delta);
    let big_budget = cfg.budget(
        Epsilon::new(cfg.big_budget()).expect("positive budget"),
        cfg.big_delta(),
    );
    let small_budget = cfg.budget(
        Epsilon::new(cfg.small_budget).expect("positive budget"),
        cfg.small_delta(),
    );

    let mut report = ChaosReport {
        cycles: cfg.cycles,
        failpoints_active,
        answered: 0,
        refused: 0,
        quarantined: 0,
        degraded: 0,
        worker_respawns: 0,
        ledger_replays: 0,
        unresolved_tickets: 0,
        duplicate_releases: 0,
        unexpected_errors: 0,
        overspent_tenants: 0,
        undercounted_tenants: 0,
        delta_overspent_tenants: 0,
        delta_undercounted_tenants: 0,
        starved_cycles: 0,
        latency_violations: 0,
        missed_faults: 0,
        postmortems: 0,
        missing_postmortems: 0,
    };
    let flightrec_dir = dir.join("flightrec");
    let mut granted: HashMap<String, (f64, f64)> = HashMap::new();
    let mut seen_indices: HashSet<u64> = HashSet::new();

    for cycle in 0..cfg.cycles {
        let fault = Fault::ROTATION[cycle % Fault::ROTATION.len()];
        let mut rng = derive_rng(cfg.seed, 0xc4a0_5000 + cycle as u64);
        reset();
        if failpoints_active {
            match fault {
                Fault::WorkerPanic => arm(
                    "server::worker::panic",
                    FailAction::Panic,
                    FireRule::Once {
                        at: rng.gen_range(1..=2),
                    },
                ),
                Fault::CompileStall => arm(
                    "core::alm::stall",
                    FailAction::SleepMs(150),
                    FireRule::Always,
                ),
                Fault::SettleCrash => arm(
                    "server::settle::crash",
                    FailAction::Panic,
                    FireRule::Once {
                        at: rng.gen_range(1..=2),
                    },
                ),
                Fault::TornJournal | Fault::StoreTruncate => {}
            }
        }

        let dumps_before = postmortem_census(&flightrec_dir);

        let mut options = CompileOptions::with_decomposition(scaling_lrm_config());
        if cfg.is_gaussian() {
            options.flavor = NoiseFlavor::ApproxDp;
        }
        let mut builder = Server::builder(schema.clone(), data.clone())
            .mechanism(MechanismKind::Lrm)
            .compile_options(options)
            .coalesce_window(Duration::ZERO)
            .max_batch(1)
            .workers(cfg.workers)
            .seed(cfg.seed) // pinned: the epoch file must separate the streams
            .state_dir(dir);
        if fault == Fault::CompileStall {
            builder = builder.compile_deadline(cfg.stall_deadline);
        }
        let server = builder
            .build()
            .expect("a chaos server must build over damaged state");
        for t in 0..cfg.big_tenants {
            server
                .try_register_tenant_budget(&ChaosConfig::big_name(t), big_budget)
                .expect("big-tenant ledger reopens");
        }
        server
            .try_register_tenant_budget("small", small_budget)
            .expect("small-tenant ledger reopens");

        let (cyc, server_report) = server.serve(|client| {
            let mut cyc = CycleOutcome::default();
            let mut spec_rng = derive_rng(cfg.seed, 0x57ec_0000 + cycle as u64);
            for r in 0..cfg.requests_per_cycle {
                let tenant = if r % (cfg.big_tenants + 1) == cfg.big_tenants {
                    "small".to_string()
                } else {
                    ChaosConfig::big_name(r % cfg.big_tenants)
                };
                let spec = random_panel(cfg, &mut spec_rng);
                let t0 = Instant::now();
                let ticket = match client.submit_budget(&tenant, &spec, request_budget) {
                    Ok(t) => t,
                    Err(ServerError::Overloaded { .. }) => continue,
                    Err(_) => {
                        cyc.unexpected += 1;
                        continue;
                    }
                };
                match ticket.wait_timeout(Duration::from_secs(30)) {
                    None => cyc.unresolved += 1,
                    Some(Ok(release)) => {
                        cyc.answered += 1;
                        if release.degraded {
                            cyc.degraded += 1;
                        }
                        cyc.grants
                            .push((tenant, release.eps_spent.value(), release.delta_spent));
                        cyc.indices.push(release.batch_index);
                        if fault == Fault::CompileStall && t0.elapsed() > 2 * cfg.stall_deadline {
                            cyc.latency_violations += 1;
                        }
                    }
                    Some(Err(ServerError::Admission(_))) => cyc.refused += 1,
                    Some(Err(ServerError::Quarantined { .. })) => cyc.quarantined += 1,
                    Some(Err(_)) => cyc.unexpected += 1,
                }
            }
            cyc
        });
        reset();

        // Merge the cycle into the run-wide invariants.
        report.answered += cyc.answered;
        report.refused += cyc.refused;
        report.quarantined += cyc.quarantined;
        report.degraded += cyc.degraded;
        report.unresolved_tickets += cyc.unresolved;
        report.unexpected_errors += cyc.unexpected;
        report.latency_violations += cyc.latency_violations;
        report.worker_respawns += server_report.metrics.worker_respawns;
        if cyc.answered == 0 {
            report.starved_cycles += 1;
        }
        for (tenant, eps, delta) in &cyc.grants {
            let entry = granted.entry(tenant.clone()).or_insert((0.0, 0.0));
            entry.0 += eps;
            entry.1 += delta;
        }
        for &idx in &cyc.indices {
            if !seen_indices.insert(idx) {
                report.duplicate_releases += 1;
            }
        }
        if failpoints_active {
            let symptom_shown = match fault {
                Fault::WorkerPanic | Fault::SettleCrash => {
                    server_report.metrics.worker_respawns > 0
                }
                Fault::CompileStall => server_report.metrics.degraded_releases > 0,
                Fault::TornJournal | Fault::StoreTruncate => true,
            };
            if !symptom_shown {
                report.missed_faults += 1;
            }
            // Every injected panic must leave a flight-recorder dump
            // behind — a crash with no post-mortem is undiagnosable.
            if matches!(fault, Fault::WorkerPanic | Fault::SettleCrash)
                && postmortem_census(&flightrec_dir) <= dumps_before
            {
                report.missing_postmortems += 1;
            }
        }
        if !cfg.quiet {
            println!(
                "cycle {cycle:02} [{}]: {} answered ({} degraded), {} refused, {} quarantined, \
                 {} respawns, {} replays",
                fault.label(),
                cyc.answered,
                cyc.degraded,
                cyc.refused,
                cyc.quarantined,
                server_report.metrics.worker_respawns,
                server_report.metrics.ledger_replays,
            );
        }
        drop(server_report);

        // The file-damage faults strike *between* processes.
        match fault {
            Fault::TornJournal => tear_a_journal(dir, &mut rng),
            Fault::StoreTruncate => truncate_farm_queue(dir),
            _ => {}
        }
    }

    // Final verification reopen: the replayed ledgers must remember at
    // least every grant any client ever observed (over-charge is legal,
    // under-charge never), and nothing may exceed its budget.
    let verifier = Server::builder(schema, data)
        .workers(1)
        .seed(cfg.seed)
        .state_dir(dir)
        .build()
        .expect("the verification server must build");
    let mut check = |tenant: &str, budget: Budget| {
        let resume = verifier
            .try_register_tenant_budget(tenant, budget)
            .expect("ledger reopens for verification");
        let (observed, observed_delta) = granted.get(tenant).copied().unwrap_or((0.0, 0.0));
        if observed > budget.eps().value() + 1e-9 {
            report.overspent_tenants += 1;
        }
        if observed_delta > budget.delta() + 1e-12 {
            report.delta_overspent_tenants += 1;
        }
        if resume.resumed {
            report.ledger_replays += 1;
            if resume.spent + 1e-9 < observed {
                report.undercounted_tenants += 1;
            }
            if resume.delta_spent + 1e-12 < observed_delta {
                report.delta_undercounted_tenants += 1;
            }
        } else if observed > 0.0 {
            // A tenant that was granted ε but left no journal behind is
            // exactly the under-count the WAL exists to prevent.
            report.undercounted_tenants += 1;
        }
    };
    for t in 0..cfg.big_tenants {
        check(&ChaosConfig::big_name(t), big_budget);
    }
    check("small", small_budget);
    drop(verifier);
    report.postmortems = postmortem_census(&flightrec_dir);

    if cfg.state_dir.is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }
    report
}

/// Counts the **parseable** flight-recorder post-mortem dumps under the
/// state directory's `flightrec/`. Parseable means non-empty with every
/// line a `{"t":…}` JSON object — the JSON-lines contract the dump
/// writer promises, checked here so a truncated or interleaved dump
/// fails the chaos gate rather than some later reader.
fn postmortem_census(flightrec: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(flightrec) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("postmortem-") && name.ends_with(".jsonl")
        })
        .filter(|e| {
            std::fs::read_to_string(e.path()).is_ok_and(|text| {
                !text.trim().is_empty()
                    && text
                        .lines()
                        .all(|l| l.starts_with('{') && l.ends_with('}') && l.contains("\"t\":"))
            })
        })
        .count() as u64
}

/// A random range panel snapped to the boundary grid.
fn random_panel(cfg: &ChaosConfig, rng: &mut impl Rng) -> QuerySpec {
    let step = (cfg.buckets / cfg.cuts).max(1);
    let boundary = |k: usize| (k * step) as f64;
    let ranges: Vec<(f64, f64)> = (0..cfg.spec_queries)
        .map(|_| {
            let lo = rng.gen_range(0..cfg.cuts);
            let hi = rng.gen_range(lo + 1..=cfg.cuts);
            (boundary(lo), boundary(hi))
        })
        .collect();
    QuerySpec::Ranges { attr: 0, ranges }
}

/// Tears 1–3 bytes off the end of one tenant's budget journal — less
/// than any frame, so only the final frame can be damaged (the torn-tail
/// case the journal's recovery is specified for).
fn tear_a_journal(state_dir: &Path, rng: &mut impl Rng) {
    let ledgers = state_dir.join("ledgers");
    let Ok(entries) = std::fs::read_dir(&ledgers) else {
        return;
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "epsj"))
        .collect();
    files.sort();
    if files.is_empty() {
        return;
    }
    let victim = &files[rng.gen_range(0..files.len())];
    let Ok(meta) = std::fs::metadata(victim) else {
        return;
    };
    let cut = 1 + rng.gen_range(0..3) as u64;
    if meta.len() > cut + 8 {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(victim) {
            let _ = f.set_len(meta.len() - cut);
        }
    }
}

/// Chops the persisted farm popularity queue in half; the next server
/// must tolerate the damage (it is a performance hint, not privacy
/// state).
fn truncate_farm_queue(state_dir: &Path) {
    let path = state_dir.join("farm_queue.lrmf");
    let Ok(meta) = std::fs::metadata(&path) else {
        return;
    };
    if meta.len() > 4 {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_len(meta.len() / 2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// File-damage faults and the restart invariants, without arming any
    /// failpoints: lib tests share one process, and an armed
    /// `server::worker::panic` would crash the *other* serving tests'
    /// workers. The failpoint faults are exercised by the `chaos` binary
    /// (its own process) and by `lrm-server`'s `faults` test binary.
    #[test]
    fn restart_invariants_hold_without_failpoints() {
        let cfg = ChaosConfig {
            cycles: 5, // one full rotation: both file-damage faults strike
            buckets: 32,
            cuts: 4,
            big_tenants: 2,
            requests_per_cycle: 4,
            spec_queries: 2,
            eps_request: 0.05,
            noise_delta: 0.0,
            small_budget: 0.12,
            workers: 2,
            stall_deadline: Duration::from_millis(400),
            seed: 0xc4a0_0001,
            inject_failpoints: false,
            quiet: true,
            state_dir: None,
        };
        let report = run_chaos(&cfg);
        assert!(
            report.passes(),
            "chaos invariants failed: {}",
            report.summary()
        );
        assert!(!report.failpoints_active);
        assert!(report.answered > 0);
        // The under-funded tenant exhausted mid-run.
        assert!(report.refused > 0, "the small tenant never exhausted");
        // Every tenant's journal replayed at the final verification.
        assert_eq!(report.ledger_replays, 3);
        assert_eq!(report.missed_faults, 0);
    }

    /// The same rotation with δ > 0: every server compiles the Gaussian
    /// mechanism, the (ε, δ)-ledgers bind both columns across restarts
    /// and file damage, and the small tenant still exhausts on ε.
    #[test]
    fn gaussian_restart_invariants_hold_without_failpoints() {
        let cfg = ChaosConfig {
            cycles: 5, // one full rotation: both file-damage faults strike
            buckets: 32,
            cuts: 4,
            big_tenants: 2,
            requests_per_cycle: 4,
            spec_queries: 2,
            eps_request: 0.05,
            noise_delta: 1e-6,
            small_budget: 0.12,
            workers: 2,
            stall_deadline: Duration::from_millis(400),
            seed: 0xc4a0_0002,
            inject_failpoints: false,
            quiet: true,
            state_dir: None,
        };
        let report = run_chaos(&cfg);
        assert!(
            report.passes(),
            "gaussian chaos invariants failed: {}",
            report.summary()
        );
        assert!(report.answered > 0);
        assert!(report.refused > 0, "the small tenant never exhausted");
        assert_eq!(report.ledger_replays, 3);
        assert_eq!(report.delta_overspent_tenants, 0);
        assert_eq!(report.delta_undercounted_tenants, 0);
    }

    #[test]
    fn rotation_covers_every_fault_and_smoke_replays_it() {
        assert_eq!(Fault::ROTATION.len(), 5);
        let smoke = ChaosConfig::smoke();
        assert!(smoke.cycles > Fault::ROTATION.len());
        // The well-funded budget covers the whole run's demand.
        assert!(
            smoke.big_budget()
                > (smoke.cycles * smoke.requests_per_cycle) as f64 * smoke.eps_request
        );
        for fault in Fault::ROTATION {
            assert!(!fault.label().is_empty());
        }
        assert!(Fault::WorkerPanic.needs_failpoints());
        assert!(!Fault::TornJournal.needs_failpoints());

        // The Gaussian smoke's three cycles are exactly the failpoint
        // faults, and its δ budgets cover the whole run's δ demand.
        let gaussian = ChaosConfig::gaussian_smoke();
        assert!(gaussian.is_gaussian());
        assert_eq!(gaussian.cycles, 3);
        assert!(Fault::ROTATION[..gaussian.cycles]
            .iter()
            .all(Fault::needs_failpoints));
        assert!(
            gaussian.big_delta()
                > (gaussian.cycles * gaussian.requests_per_cycle) as f64 * gaussian.noise_delta
        );
        assert!(gaussian.small_delta() < 1.0);
    }
}
