//! Warm-started compile farm benchmark (`BENCH_6.json`): iteration-count
//! reduction and compile-latency percentiles on a near-duplicate trace,
//! cold process vs warmed cache vs restarted-with-store.
//!
//! The trace is the production pattern ISSUE 6 names: the same dashboard
//! panel re-submitted over and over with one cut boundary moved each
//! time. Every variant has the same row count and the same rank — only
//! one breakpoint differs — which is exactly the near-duplicate the
//! engine's similarity index is built to exploit. Four measured stages:
//!
//! 1. **cold** — every shape compiled in a *fresh* engine: the per-shape
//!    ALM iteration baseline, no reuse of any kind.
//! 2. **warmed** — the shapes compiled in sequence through one engine
//!    backed by a strategy store: the first is a cold miss, every later
//!    one seeds from its nearest cached neighbor via the similarity
//!    index.
//! 3. **restarted engine** — a brand-new engine over the same store
//!    directory recompiles the whole working set: every shape must come
//!    back as an exact disk hit (zero ALM iterations, zero full
//!    recompiles), and a *new* near-duplicate must warm-start from a
//!    store-loaded seed.
//! 4. **restarted server** — a fresh `lrm-server` over a fresh engine on
//!    the same store answers the prior working set end to end (with the
//!    background compile farm on): the report must show zero cache
//!    misses.
//!
//! The headline numbers — median per-shape iteration reduction (the
//! acceptance gate is ≥ 30%) and P99 compile latency per stage — plus
//! the restart invariants are serialized in the repo's `BENCH_*.json`
//! style.

use crate::report::TableWriter;
use lrm_core::decomposition::DecompositionConfig;
use lrm_core::engine::{CacheOutcome, CacheStats, CompileOptions, Engine, MechanismKind};
use lrm_dp::Epsilon;
use lrm_server::{QuerySpec, Server};
use lrm_workload::{Attribute, Schema, Workload};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct WarmStartConfig {
    /// Histogram buckets `n` (unit-width, values `0..n`).
    pub buckets: usize,
    /// Number of near-duplicate panel shapes in the working set: the
    /// snapped base panel plus `shapes - 1` single-boundary nudges.
    pub shapes: usize,
    /// Cuts of the panel; shape `i > 0` moves the `i`-th cut boundary
    /// one bucket to the right.
    pub cuts: usize,
    /// Master seed for the server stage's noise streams.
    pub seed: u64,
    /// Strategy-store directory. `None` uses a per-process temp dir,
    /// cleaned before and after the run.
    pub store_dir: Option<PathBuf>,
    /// Suppress the summary table.
    pub quiet: bool,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        Self {
            buckets: 256,
            shapes: 10,
            cuts: 32,
            seed: 20120827,
            store_dir: None,
            quiet: false,
        }
    }
}

impl WarmStartConfig {
    /// The pinned CI smoke configuration: fewer shapes, same domain.
    pub fn smoke() -> Self {
        Self {
            shapes: 6,
            ..Self::default()
        }
    }
}

/// The compile configuration every stage shares: the default
/// convergence-driven solver (γ = 0.01) without the fixed polish tail,
/// so the recorded iteration counts are exactly the work convergence
/// demanded.
fn compile_options() -> CompileOptions {
    CompileOptions::with_decomposition(DecompositionConfig {
        polish_iters: 0,
        ..DecompositionConfig::default()
    })
}

/// The panel's interval rows: `cuts` equal ranges, four quarter rollups,
/// and the total — the shape family of the engine's warm-start tests.
/// `nudge = 0` is the snapped base panel; `nudge = k > 0` moves the
/// boundary between ranges `k-1` and `k` one bucket to the right, the
/// near-duplicate a re-published dashboard produces.
fn panel_rows(n: usize, cuts: usize, nudge: usize) -> Vec<(usize, usize)> {
    assert!(nudge < cuts, "a nudge names an interior cut boundary");
    assert!(n / cuts >= 2, "nudged ranges need at least two buckets");
    let mut rows: Vec<(usize, usize)> = (0..cuts)
        .map(|c| (c * n / cuts, (c + 1) * n / cuts - 1))
        .collect();
    if nudge > 0 {
        rows[nudge - 1].1 += 1;
        rows[nudge].0 += 1;
    }
    for q in 0..4 {
        rows.push((q * n / 4, (q + 1) * n / 4 - 1));
    }
    rows.push((0, n - 1));
    rows
}

fn panel_workload(n: usize, cuts: usize, nudge: usize) -> Workload {
    Workload::from_intervals(n, panel_rows(n, cuts, nudge)).expect("panel rows are valid")
}

/// The same panel as a serving spec (value ranges over unit buckets), so
/// the server stage produces bit-identical workload fingerprints.
fn panel_spec(n: usize, cuts: usize, nudge: usize) -> QuerySpec {
    QuerySpec::Ranges {
        attr: 0,
        ranges: panel_rows(n, cuts, nudge)
            .into_iter()
            .map(|(lo, hi)| (lo as f64, (hi + 1) as f64))
            .collect(),
    }
}

/// One stage's aggregate over the working set.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage label.
    pub stage: &'static str,
    /// Compiles performed.
    pub compiles: usize,
    /// Total ALM outer iterations across the stage (0 when every compile
    /// was a cache or store hit).
    pub total_iterations: usize,
    /// Median compile latency, milliseconds.
    pub p50_compile_ms: f64,
    /// 99th-percentile compile latency, milliseconds.
    pub p99_compile_ms: f64,
}

fn stage_stats(stage: &'static str, iterations: &[usize], latencies_ms: &[f64]) -> StageStats {
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };
    StageStats {
        stage,
        compiles: latencies_ms.len(),
        total_iterations: iterations.iter().sum(),
        p50_compile_ms: pct(0.50),
        p99_compile_ms: pct(0.99),
    }
}

/// Per-shape cold-vs-warm comparison.
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    /// Which cut boundary this variant nudges (0 = the snapped base).
    pub nudge: usize,
    /// ALM iterations of the cold (fresh-engine) compile.
    pub cold_iterations: usize,
    /// ALM iterations of the warm-path compile (the first shape is the
    /// cold seed donor).
    pub warm_iterations: usize,
    /// Whether the warm path actually seeded from a cached neighbor.
    pub warm_started: bool,
    /// `(cold - warm) / cold`, the iteration reduction.
    pub reduction: f64,
}

/// The whole benchmark outcome.
#[derive(Debug, Clone)]
pub struct WarmStartReport {
    /// Configuration echo.
    pub config: WarmStartConfig,
    /// Aggregates for the cold / warmed / restarted-engine stages.
    pub stages: Vec<StageStats>,
    /// Per-shape comparison rows.
    pub shapes: Vec<ShapeOutcome>,
    /// Median iteration reduction over the warm-started shapes.
    pub median_reduction: f64,
    /// Restarted engine: exact disk hits when recompiling the working set.
    pub restart_disk_hits: u64,
    /// Restarted engine: cache misses (must be 0).
    pub restart_misses: u64,
    /// Whether a *new* near-duplicate warm-started from a store-loaded
    /// seed after the restart.
    pub restart_warm_start: bool,
    /// Restarted server: requests answered over the prior working set.
    pub server_answered: u64,
    /// Restarted server: engine cache misses during the replay (must
    /// be 0 — "zero full recompiles").
    pub server_misses: u64,
    /// Restarted server: engine cache stats at the end of the replay.
    pub server_cache: CacheStats,
    /// Restarted server: distinct shapes the compile farm observed.
    pub farm_shapes: u64,
    /// Restarted server: shapes the farm precompiled at idle.
    pub farm_precompiled: u64,
}

impl WarmStartReport {
    /// The acceptance gate of ISSUE 6: ≥ 30% median iteration reduction,
    /// strictly less warm work overall, and both restarts answering the
    /// working set with zero full recompiles.
    pub fn passes_smoke(&self) -> bool {
        let cold: usize = self.shapes.iter().map(|s| s.cold_iterations).sum();
        let warm: usize = self
            .shapes
            .iter()
            .filter(|s| s.warm_started)
            .map(|s| s.warm_iterations)
            .sum();
        let cold_warm_only: usize = self
            .shapes
            .iter()
            .filter(|s| s.warm_started)
            .map(|s| s.cold_iterations)
            .sum();
        self.median_reduction >= 0.30
            && self.shapes.iter().skip(1).all(|s| s.warm_started)
            && warm < cold_warm_only
            && warm < cold
            && self.restart_misses == 0
            && self.restart_disk_hits == self.shapes.len() as u64
            && self.restart_warm_start
            && self.server_misses == 0
            && self.server_answered == self.shapes.len() as u64
    }

    /// Serializes the report in the repo's `BENCH_*.json` style.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"label\": \"{label}\",");
        let _ = writeln!(
            out,
            "  \"config\": {{ \"buckets\": {}, \"shapes\": {}, \"cuts\": {}, \"seed\": {} }},",
            self.config.buckets, self.config.shapes, self.config.cuts, self.config.seed,
        );
        let _ = writeln!(
            out,
            "  \"units\": {{ \"iterations\": \"ALM outer iterations per compile\", \"latency\": \"wall-clock milliseconds per Engine::compile\" }},"
        );
        let _ = writeln!(out, "  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"stage\": \"{}\", \"compiles\": {}, \"total_iterations\": {}, \"p50_compile_ms\": {:.3}, \"p99_compile_ms\": {:.3} }}{}",
                s.stage,
                s.compiles,
                s.total_iterations,
                s.p50_compile_ms,
                s.p99_compile_ms,
                if i + 1 < self.stages.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"shapes\": [");
        for (i, s) in self.shapes.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"nudge\": {}, \"cold_iterations\": {}, \"warm_iterations\": {}, \"warm_started\": {}, \"reduction\": {:.4} }}{}",
                s.nudge,
                s.cold_iterations,
                s.warm_iterations,
                s.warm_started,
                s.reduction,
                if i + 1 < self.shapes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"restart\": {{ \"disk_hits\": {}, \"misses\": {}, \"new_shape_warm_started\": {} }},",
            self.restart_disk_hits, self.restart_misses, self.restart_warm_start,
        );
        let _ = writeln!(
            out,
            "  \"server_restart\": {{ \"answered\": {}, \"misses\": {}, \"disk_hits\": {}, \"store_loads\": {}, \"warm_hits\": {}, \"farm_shapes\": {}, \"farm_precompiled\": {} }},",
            self.server_answered,
            self.server_misses,
            self.server_cache.disk_hits,
            self.server_cache.store_loads,
            self.server_cache.warm_hits,
            self.farm_shapes,
            self.farm_precompiled,
        );
        let _ = writeln!(
            out,
            "  \"comparison\": {{ \"median_iteration_reduction\": {:.4}, \"zero_recompiles_after_restart\": {}, \"passes_smoke\": {} }}",
            self.median_reduction,
            self.restart_misses == 0 && self.server_misses == 0,
            self.passes_smoke(),
        );
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json(label))
    }
}

/// Runs the four-stage benchmark.
pub fn run_warm_start_bench(cfg: &WarmStartConfig) -> WarmStartReport {
    assert!(cfg.shapes >= 2, "the trace needs at least two shapes");
    assert!(
        cfg.shapes < cfg.cuts,
        "each shape past the first nudges a distinct interior boundary"
    );
    let n = cfg.buckets;
    let options = compile_options();
    let store_dir = cfg.store_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("lrm_bench6_store_{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&store_dir);
    let workloads: Vec<Workload> = (0..cfg.shapes)
        .map(|i| panel_workload(n, cfg.cuts, i))
        .collect();

    // Stage 1 — cold: a fresh engine per shape, no reuse of any kind.
    let mut cold_iters = Vec::with_capacity(cfg.shapes);
    let mut cold_ms = Vec::with_capacity(cfg.shapes);
    for w in &workloads {
        let engine = Engine::builder().build();
        let t0 = Instant::now();
        let compiled = engine
            .compile(w, MechanismKind::Lrm, &options)
            .expect("panel workloads compile");
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        cold_iters.push(
            compiled
                .meta()
                .alm_iterations
                .expect("LRM records iterations"),
        );
    }

    // Stage 2 — warmed: one store-backed engine, shapes in sequence.
    let mut warm_iters = Vec::with_capacity(cfg.shapes);
    let mut warm_started = Vec::with_capacity(cfg.shapes);
    let mut warm_ms = Vec::with_capacity(cfg.shapes);
    {
        let engine = Engine::builder().spill_dir(&store_dir).build();
        for w in &workloads {
            let t0 = Instant::now();
            let compiled = engine
                .compile(w, MechanismKind::Lrm, &options)
                .expect("panel workloads compile");
            warm_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            warm_iters.push(
                compiled
                    .meta()
                    .alm_iterations
                    .expect("LRM records iterations"),
            );
            warm_started.push(compiled.meta().cache == CacheOutcome::WarmStart);
        }
    }

    // Stage 3 — restarted engine: a fresh process stand-in over the same
    // store answers the working set from disk and warm-starts a shape it
    // has never seen.
    let mut restart_ms = Vec::with_capacity(cfg.shapes);
    let (restart_stats, restart_warm_start) = {
        let engine = Engine::builder().spill_dir(&store_dir).build();
        for w in &workloads {
            let t0 = Instant::now();
            engine
                .compile(w, MechanismKind::Lrm, &options)
                .expect("panel workloads compile");
            restart_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let stats = engine.cache_stats();
        let unseen = panel_workload(n, cfg.cuts, cfg.shapes);
        let compiled = engine
            .compile(&unseen, MechanismKind::Lrm, &options)
            .expect("panel workloads compile");
        (stats, compiled.meta().cache == CacheOutcome::WarmStart)
    };

    // Stage 4 — restarted server: the serving runtime over yet another
    // fresh engine on the same store replays the working set end to end,
    // with the background compile farm on.
    let schema =
        Schema::single(Attribute::new("value", 0.0, n as f64, n).expect("valid attribute"));
    let data: Vec<f64> = (0..n).map(|i| ((i * 13) % 97) as f64).collect();
    let server = Server::builder(schema, data)
        .engine(Engine::builder().spill_dir(&store_dir).build())
        .mechanism(MechanismKind::Lrm)
        .compile_options(options)
        .max_batch(1)
        .workers(2)
        .precompile_workers(1)
        .compile_budget(Duration::from_secs(5))
        .seed(cfg.seed)
        .build()
        .expect("valid server configuration");
    let budget = Epsilon::new(cfg.shapes as f64).expect("positive budget");
    server.register_tenant("dashboard", budget);
    let eps = Epsilon::new(0.5).expect("positive eps");
    let (answered, server_report) = server.serve(|client| {
        let tickets: Vec<_> = (0..cfg.shapes)
            .map(|i| {
                client
                    .submit("dashboard", &panel_spec(n, cfg.cuts, i), eps)
                    .expect("working-set specs are valid")
            })
            .collect();
        tickets.into_iter().filter_map(|t| t.wait().ok()).count() as u64
    });

    if cfg.store_dir.is_none() {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    let shapes: Vec<ShapeOutcome> = (0..cfg.shapes)
        .map(|i| ShapeOutcome {
            nudge: i,
            cold_iterations: cold_iters[i],
            warm_iterations: warm_iters[i],
            warm_started: warm_started[i],
            reduction: (cold_iters[i].saturating_sub(warm_iters[i])) as f64
                / (cold_iters[i].max(1)) as f64,
        })
        .collect();
    let mut reductions: Vec<f64> = shapes
        .iter()
        .filter(|s| s.warm_started)
        .map(|s| s.reduction)
        .collect();
    reductions.sort_by(|a, b| a.partial_cmp(b).expect("finite reductions"));
    let median_reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions[reductions.len() / 2]
    };

    let report = WarmStartReport {
        config: cfg.clone(),
        stages: vec![
            stage_stats("cold", &cold_iters, &cold_ms),
            stage_stats("warmed", &warm_iters, &warm_ms),
            stage_stats("restarted_engine", &[], &restart_ms),
        ],
        shapes,
        median_reduction,
        restart_disk_hits: restart_stats.disk_hits,
        restart_misses: restart_stats.misses,
        restart_warm_start,
        server_answered: answered,
        server_misses: server_report.cache.misses,
        server_cache: server_report.cache,
        farm_shapes: server_report.metrics.farm_shapes,
        farm_precompiled: server_report.metrics.farm_precompiled,
    };

    if !cfg.quiet {
        let mut table = TableWriter::new(format!(
            "Warm-start benchmark — {} near-duplicate {}-cut panels over n = {}",
            cfg.shapes, cfg.cuts, cfg.buckets
        ));
        table.header(&["stage", "compiles", "iters", "p50 ms", "p99 ms"]);
        for s in &report.stages {
            table.row(vec![
                s.stage.to_string(),
                s.compiles.to_string(),
                s.total_iterations.to_string(),
                format!("{:.1}", s.p50_compile_ms),
                format!("{:.1}", s.p99_compile_ms),
            ]);
        }
        println!("{}", table.render());
        println!(
            "median iteration reduction {:.1}% | restart: {} disk hits, {} misses | server replay: {} answered, {} misses",
            report.median_reduction * 100.0,
            report.restart_disk_hits,
            report.restart_misses,
            report.server_answered,
            report.server_misses,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_rows_and_specs_agree() {
        let n = 64;
        let rows = panel_rows(n, 16, 0);
        assert_eq!(rows.len(), 16 + 4 + 1);
        assert_eq!(*rows.last().unwrap(), (0, 63));
        // A nudge moves exactly one boundary, keeping the rows contiguous.
        let nudged = panel_rows(n, 16, 3);
        assert_eq!(nudged[2], (rows[2].0, rows[2].1 + 1));
        assert_eq!(nudged[3], (rows[3].0 + 1, rows[3].1));
        assert_ne!(
            panel_workload(n, 16, 3).fingerprint(),
            panel_workload(n, 16, 0).fingerprint()
        );
        // The spec translates back to exactly the same rows.
        let schema = Schema::single(Attribute::new("v", 0.0, n as f64, n).unwrap());
        let prepared = panel_spec(n, 16, 3).compile(&schema).unwrap();
        let w = prepared.to_workload().unwrap();
        assert_eq!(w.fingerprint(), panel_workload(n, 16, 3).fingerprint());
    }

    #[test]
    fn tiny_bench_passes_its_own_gate() {
        // A scaled-down run of the real four-stage benchmark: the gate
        // the CI smoke enforces must hold at this size too.
        let cfg = WarmStartConfig {
            buckets: 64,
            shapes: 3,
            cuts: 16,
            quiet: true,
            store_dir: Some(
                std::env::temp_dir().join(format!("lrm_bench6_test_{}", std::process::id())),
            ),
            ..WarmStartConfig::default()
        };
        let _ = std::fs::remove_dir_all(cfg.store_dir.as_ref().unwrap());
        let report = run_warm_start_bench(&cfg);
        let _ = std::fs::remove_dir_all(cfg.store_dir.as_ref().unwrap());

        assert!(report.shapes.iter().skip(1).all(|s| s.warm_started));
        assert_eq!(report.restart_misses, 0);
        assert_eq!(report.restart_disk_hits, 3);
        assert!(report.restart_warm_start);
        assert_eq!(report.server_misses, 0);
        assert_eq!(report.server_answered, 3);
        assert!(report.median_reduction > 0.0);
        let json = report.to_json("test");
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"median_iteration_reduction\""));
    }
}
