//! Figure 4: all five mechanisms vs domain size `n` on the WDiscrete
//! workload, ε = 0.1, three datasets.

use crate::experiments::sweep::{run_domain_sweep, SweepPlan};
use crate::experiments::ExperimentContext;
use crate::mechanisms;
use crate::report::CsvRecord;
use lrm_workload::generators::WDiscrete;

/// Runs the Fig. 4 sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<CsvRecord> {
    let plan = SweepPlan {
        figure: "fig4",
        title: "Fig 4 — error vs domain size n (WDiscrete)",
        x_name: "n",
        mechanisms: &mechanisms::FIG4_SET,
        workload_name: "WDiscrete",
    };
    run_domain_sweep(&plan, &WDiscrete::default(), ctx)
}
