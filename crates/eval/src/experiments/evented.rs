//! Evented front-end harness: 10⁴+ in-flight requests from a handful of
//! driver threads, against the thread-per-client blocking driver.
//!
//! The question this bench answers is different from the coalescing one
//! ([`crate::experiments::serving`] asks *does batching beat per-query
//! serving*): here **both** runs use the coalescing scheduler at equal ε
//! on the identical trace, and the variable is the *front end*:
//!
//! * **blocking** — the legacy shape: one OS thread per virtual client,
//!   each a synchronous request–response loop (`burst` tickets deep,
//!   1 in the pinned gate) blocking on [`lrm_server::Ticket::wait`].
//!   Holding ~10⁴ requests in flight costs ~10⁴ OS threads, and every
//!   completion pays a dedicated per-request channel wakeup of a
//!   specific parked thread that then contends with thousands of
//!   runnable siblings for a CPU slice before it can even resubmit.
//! * **evented** — the *same* virtual-client population folded onto a
//!   few driver threads. Each driver simulates its share of the clients
//!   (dealt round-robin), submitting through
//!   [`Client::submit_budget_into`](lrm_server::Client::submit_budget_into)
//!   into one [`TicketSet`] and harvesting with
//!   [`TicketSet::wait_any`]; the set token (handed out in submission
//!   order) maps each completion back to its virtual client, whose next
//!   request is submitted on the spot. The server runs its sharded
//!   scheduler (`shards > 1`), so admission, window timing, and
//!   flushing are spread across per-noise-class shards with
//!   work-stealing workers behind them.
//!
//! Both drivers enforce identical per-client sequencing — virtual
//! client *c* never has more than `burst` requests outstanding, and its
//! request *r + 1* is submitted only once *r*'s completion is observed —
//! so both offer the same load (clients × burst in flight) and neither
//! gets to time-shift its submissions. Latency is **client-observed**:
//! the clock starts in the driver immediately before the submit call
//! and stops when the driver observes the completion, so the blocking
//! run is charged for its thread wakeup/reschedule delays exactly as
//! the evented run is charged for its harvest loop. Both grant the
//! *entire* trace (the tenant budgets are sized so no request is
//! refused), which makes throughput and tail latency directly
//! comparable: same requests, same grants, same noise discipline, zero
//! ε/δ over-spend tolerated. The gate
//! ([`EventedReport::passes_smoke`]) requires the evented run to hold
//! ≥ `target_in_flight` requests in flight server-side, to sustain
//! strictly higher throughput *and* strictly lower p99 latency than the
//! blocking driver, and to actually spread load across ≥ 2 scheduler
//! shards with bounded imbalance.

use crate::experiments::scaling::scaling_lrm_config;
use crate::experiments::serving::{
    build_trace, ServingConfig, ServingRunStats, Trace, TraceRequest,
};
use crate::report::TableWriter;
use lrm_core::engine::{CompileOptions, Engine, MechanismKind, NoiseFlavor};
use lrm_dp::{Budget, Epsilon};
use lrm_linalg::operator::densification_count;
use lrm_server::{Client, Server, ServerError, ServerReport, Ticket, TicketSet};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Configuration of the evented-vs-blocking comparison.
#[derive(Debug, Clone)]
pub struct EventedConfig {
    /// The shared trace/server shape. `burst` is the per-virtual-client
    /// pipeline depth in *both* drivers (1 = synchronous
    /// request–response), so both hold `clients × burst` requests in
    /// flight and the comparison is about the front end, not the
    /// offered load.
    pub serving: ServingConfig,
    /// Scheduler shards of the evented run's server (the blocking run
    /// keeps the single-shard legacy shape).
    pub shards: usize,
    /// Driver threads of the evented run. The trace's virtual clients
    /// are dealt round-robin across them.
    pub driver_threads: usize,
    /// The in-flight floor the evented run must demonstrate: its
    /// server-side peak queue depth must reach this many concurrently
    /// submitted-but-unanswered requests.
    pub target_in_flight: u64,
}

impl EventedConfig {
    /// The pinned CI gate configuration: a small domain (answering is
    /// cheap, so the front end is what's measured) and the classic C10K
    /// population — 12 288 virtual clients, each a synchronous
    /// request–response loop (`burst` 1) issuing 4 requests, ≈ 5 × 10⁴
    /// submissions with 12 288 concurrently in flight. The blocking
    /// driver needs one OS thread per client to hold that; the evented
    /// driver folds them onto 4 threads. Four ε levels give the
    /// noise-class shard router classes to spread, and tenant budgets
    /// are sized to grant every request in both runs.
    pub fn smoke() -> Self {
        EventedConfig {
            serving: ServingConfig {
                buckets: 16,
                cuts: 8,
                tenants: 8,
                clients: 12_288,
                requests_per_client: 4,
                burst: 1,
                spec_queries: 1,
                window: Duration::from_millis(5),
                max_batch: 64,
                workers: 3,
                eps_request: 0.1,
                // Requests round-robin tenants (8) and ε levels (4), so
                // tenant t always draws level t mod 4; the hottest
                // tenants spend 6 144 × 0.4 = 2 457.6 ε. 2 800 grants
                // everything — rejections would skew the comparison.
                tenant_budget: 2_800.0,
                seed: 20120827,
                quiet: false,
                noise_delta: 0.0,
                tenant_delta: 0.0,
                eps_levels: vec![0.05, 0.1, 0.2, 0.4],
                rank_close: false,
            },
            shards: 8,
            driver_threads: 4,
            target_in_flight: 10_000,
        }
    }
}

/// The evented run's stats: the shared serving counters plus the
/// shard/steal picture that only exists on a sharded server.
#[derive(Debug, Clone)]
pub struct EventedRunStats {
    /// The common counters, measured exactly as the blocking run's.
    pub stats: ServingRunStats,
    /// Driver threads that drove the run.
    pub driver_threads: usize,
    /// Scheduler shards of the run's server.
    pub shards: usize,
    /// Batches a worker claimed from another shard's flush queue.
    pub stolen_batches: u64,
    /// Peak submitted-but-unanswered requests per shard (index = shard).
    pub shard_peak_depths: Vec<u64>,
}

impl EventedRunStats {
    /// Peak concurrently in-flight requests, measured server-side
    /// (submitted but not yet answered, summed across shards).
    pub fn peak_in_flight(&self) -> u64 {
        self.stats.peak_queue_depth
    }

    /// Shards that ever held a request.
    pub fn active_shards(&self) -> usize {
        self.shard_peak_depths.iter().filter(|&&p| p > 0).count()
    }

    /// The hottest shard's share of the summed per-shard peaks — the
    /// imbalance signal (1.0 means one shard took everything).
    pub fn max_shard_fraction(&self) -> f64 {
        let total: u64 = self.shard_peak_depths.iter().sum();
        let max = self.shard_peak_depths.iter().copied().max().unwrap_or(0);
        if total == 0 {
            1.0
        } else {
            max as f64 / total as f64
        }
    }
}

/// Per-driver-thread accumulation (one per blocking client thread or
/// evented driver thread).
#[derive(Debug, Default, Clone)]
struct DriverOutcome {
    granted_per_tenant: Vec<f64>,
    granted_delta_per_tenant: Vec<f64>,
    answered: u64,
    rejected: u64,
    queries: u64,
    sq_err: f64,
    /// Client-observed submit-to-completion latency of every granted
    /// request, in microseconds (the clock starts just before the
    /// submit call and stops when the driver observes the completion).
    latencies_us: Vec<u64>,
}

impl DriverOutcome {
    fn for_tenants(tenants: usize) -> Self {
        DriverOutcome {
            granted_per_tenant: vec![0.0; tenants],
            granted_delta_per_tenant: vec![0.0; tenants],
            ..DriverOutcome::default()
        }
    }

    /// Fold one completion into the tallies.
    fn record(
        &mut self,
        req: &TraceRequest,
        outcome: Result<lrm_server::Release, ServerError>,
        latency: Duration,
    ) {
        match outcome {
            Ok(release) => {
                self.latencies_us.push(latency.as_micros() as u64);
                self.granted_per_tenant[req.tenant] += release.eps_spent.value();
                self.granted_delta_per_tenant[req.tenant] += release.delta_spent;
                self.answered += 1;
                self.queries += release.answers.len() as u64;
                self.sq_err += release
                    .answers
                    .iter()
                    .zip(&req.exact)
                    .map(|(a, e)| (a - e) * (a - e))
                    .sum::<f64>();
            }
            Err(ServerError::Admission(_)) => self.rejected += 1,
            Err(e) => panic!("unexpected serving failure: {e}"),
        }
    }
}

/// Builds one serving run's server: same engine/mechanism/scheduler
/// shape in both modes, only the shard count differs.
fn build_server(scfg: &ServingConfig, trace: &Trace, shards: usize) -> Server {
    let mut options = CompileOptions::with_decomposition(scaling_lrm_config());
    if scfg.is_gaussian() {
        options.flavor = NoiseFlavor::ApproxDp;
    }
    // A fresh engine, like every serving run: cold strategy cache.
    let server = Server::builder(trace.schema.clone(), trace.data.clone())
        .engine(Engine::builder().build())
        .mechanism(MechanismKind::Lrm)
        .compile_options(options)
        .coalesce_window(scfg.window)
        .max_batch(scfg.max_batch)
        .workers(scfg.workers)
        .rank_close(scfg.rank_close)
        .shards(shards)
        .seed(scfg.seed)
        .build()
        .expect("valid server configuration");
    let budget_eps = Epsilon::new(scfg.tenant_budget).expect("positive budget");
    let budget = if scfg.is_gaussian() {
        Budget::approx(budget_eps, scfg.tenant_delta).expect("valid tenant delta")
    } else {
        Budget::pure(budget_eps)
    };
    for t in 0..scfg.tenants {
        server.register_tenant_budget(&ServingConfig::tenant_name(t), budget);
    }
    server
}

/// Folds driver outcomes and the server report into the shared stats
/// shape, checking the observed grants against the registered budgets.
fn collect_stats(
    mode: &'static str,
    scfg: &ServingConfig,
    outcomes: &[DriverOutcome],
    report: &ServerReport,
    wall_seconds: f64,
    densifications: u64,
) -> ServingRunStats {
    let mut granted = vec![0.0f64; scfg.tenants];
    let mut granted_delta = vec![0.0f64; scfg.tenants];
    let mut answered = 0u64;
    let mut rejected = 0u64;
    let mut queries = 0u64;
    let mut sq_err = 0.0f64;
    let mut latencies: Vec<u64> = Vec::new();
    for o in outcomes {
        latencies.extend_from_slice(&o.latencies_us);
        for (g, total) in o.granted_per_tenant.iter().zip(granted.iter_mut()) {
            *total += g;
        }
        for (g, total) in o
            .granted_delta_per_tenant
            .iter()
            .zip(granted_delta.iter_mut())
        {
            *total += g;
        }
        answered += o.answered;
        rejected += o.rejected;
        queries += o.queries;
        sq_err += o.sq_err;
    }
    let overspend = granted
        .iter()
        .any(|&g| g > scfg.tenant_budget * (1.0 + 1e-9) + 1e-12);
    let delta_overspend = granted_delta
        .iter()
        .any(|&g| g > scfg.tenant_delta * (1.0 + 1e-9) + 1e-18);
    // Exact percentiles over the client-observed latencies (the
    // server-side histogram can't see the front end's own delays —
    // thread wakeups, harvest loops — which are the whole point here).
    latencies.sort_unstable();
    let percentile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).ceil() as usize;
        latencies[idx] as f64 / 1e3
    };
    let p50_latency_ms = percentile(0.50);
    let p99_latency_ms = percentile(0.99);

    ServingRunStats {
        mode,
        wall_seconds,
        answered,
        rejected,
        queries_answered: queries,
        requests_per_second: answered as f64 / wall_seconds.max(1e-9),
        queries_per_second: queries as f64 / wall_seconds.max(1e-9),
        mean_squared_error: if queries > 0 {
            sq_err / queries as f64
        } else {
            0.0
        },
        batches: report.metrics.batches,
        coalesced_batches: report.metrics.coalesced_batches,
        mean_occupancy: report.metrics.mean_occupancy,
        max_occupancy: report.metrics.max_occupancy,
        cache_misses: report.cache.misses,
        cache_hits: report.cache.memory_hits,
        peak_queue_depth: report.metrics.peak_queue_depth,
        p50_latency_ms,
        p99_latency_ms,
        overspend,
        delta_overspend,
        cross_eps_batches: report.metrics.cross_eps_batches,
        densifications,
    }
}

/// Replays the trace through the legacy front end: a single-shard
/// server, one OS thread per virtual client, each holding a `burst`-deep
/// pipeline of blocking tickets. The client threads run on small stacks
/// (the drive loop is shallow) so the 10⁴-thread population stays cheap
/// in memory; what it can't avoid is the scheduler cost of 10⁴ runnable
/// threads, which is exactly what the comparison measures.
pub fn run_blocking_mode(cfg: &EventedConfig, trace: &Trace) -> ServingRunStats {
    let scfg = &cfg.serving;
    let server = build_server(scfg, trace, 1);
    let densify_before = densification_count();
    let t0 = Instant::now();
    let (outcomes, report) = server.serve(|client| {
        std::thread::scope(|s| {
            let handles: Vec<_> = trace
                .per_client
                .iter()
                .map(|requests| {
                    let client = client.clone();
                    std::thread::Builder::new()
                        .stack_size(128 * 1024)
                        .spawn_scoped(s, move || drive_blocking(&client, requests, scfg))
                        .expect("spawn blocking client thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<DriverOutcome>>()
        })
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let densifications = densification_count() - densify_before;
    collect_stats(
        "blocking",
        scfg,
        &outcomes,
        &report,
        wall_seconds,
        densifications,
    )
}

/// One blocking client: keep `burst` tickets outstanding, block on the
/// oldest, submit a replacement per completion — the steady-state
/// closed loop of the thread-per-client front end.
fn drive_blocking(
    client: &Client<'_>,
    requests: &[TraceRequest],
    cfg: &ServingConfig,
) -> DriverOutcome {
    let window = cfg.burst.max(1);
    let mut out = DriverOutcome::for_tenants(cfg.tenants);
    let mut pending: VecDeque<(usize, Instant, Ticket)> = VecDeque::with_capacity(window);
    let mut next = 0usize;
    loop {
        while pending.len() < window && next < requests.len() {
            let req = &requests[next];
            let tenant = ServingConfig::tenant_name(req.tenant);
            let start = Instant::now();
            let ticket = client
                .submit_budget(&tenant, &req.spec, req.budget)
                .expect("trace specs and tenants are valid; admission is unbounded");
            pending.push_back((next, start, ticket));
            next += 1;
        }
        let Some((index, start, ticket)) = pending.pop_front() else {
            break;
        };
        let outcome = ticket.wait();
        out.record(&requests[index], outcome, start.elapsed());
    }
    out
}

/// Replays the trace through the sharded server with `driver_threads`
/// evented drivers.
pub fn run_evented_mode(cfg: &EventedConfig, trace: &Trace) -> EventedRunStats {
    let scfg = &cfg.serving;
    let server = build_server(scfg, trace, cfg.shards);
    let densify_before = densification_count();
    let t0 = Instant::now();
    let (outcomes, report) = server.serve(|client| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.driver_threads)
                .map(|d| {
                    let client = client.clone();
                    s.spawn(move || drive_evented(&client, trace, scfg, d, cfg.driver_threads))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver thread"))
                .collect::<Vec<DriverOutcome>>()
        })
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let densifications = densification_count() - densify_before;

    let stats = collect_stats(
        "evented",
        scfg,
        &outcomes,
        &report,
        wall_seconds,
        densifications,
    );
    EventedRunStats {
        stats,
        driver_threads: cfg.driver_threads,
        shards: cfg.shards,
        stolen_batches: report.metrics.stolen_batches,
        shard_peak_depths: report.metrics.shard_peak_depths,
    }
}

/// One evented driver: simulate the virtual clients dealt to this
/// driver (clients `driver`, `driver + drivers`, …) with the exact
/// per-client sequencing the blocking threads enforce — every client
/// keeps up to `burst` requests outstanding, and its next request is
/// submitted the moment one of its completions is harvested. All
/// submissions go into one [`TicketSet`]; set tokens come back in
/// submission order starting at 0, so `token` indexes the driver's
/// submit-order bookkeeping that maps each completion back to the
/// virtual client (and its latency clock) it belongs to.
fn drive_evented(
    client: &Client<'_>,
    trace: &Trace,
    cfg: &ServingConfig,
    driver: usize,
    drivers: usize,
) -> DriverOutcome {
    let vclients: Vec<&Vec<TraceRequest>> = trace
        .per_client
        .iter()
        .skip(driver)
        .step_by(drivers)
        .collect();
    let burst = cfg.burst.max(1);
    let set = TicketSet::new();
    let mut out = DriverOutcome::for_tenants(cfg.tenants);
    // Per-virtual-client cursor of the next request to submit, and the
    // submit-order log mapping tokens back to (client, request, clock).
    let mut next = vec![0usize; vclients.len()];
    let mut submitted: Vec<(usize, usize, Instant)> = Vec::new();
    let submit = |v: usize, next: &mut [usize], submitted: &mut Vec<(usize, usize, Instant)>| {
        let r = next[v];
        let req = &vclients[v][r];
        let tenant = ServingConfig::tenant_name(req.tenant);
        let start = Instant::now();
        let token = client
            .submit_budget_into(&tenant, &req.spec, req.budget, &set)
            .expect("trace specs and tenants are valid; admission is unbounded");
        debug_assert_eq!(token, submitted.len() as u64, "tokens are sequential");
        submitted.push((v, r, start));
        next[v] = r + 1;
    };
    // Prime every client's pipeline, breadth-first so no client gets a
    // head start over its blocking-run counterpart.
    for round in 0..burst {
        for (v, requests) in vclients.iter().enumerate() {
            if round < requests.len() {
                submit(v, &mut next, &mut submitted);
            }
        }
    }
    while let Some((token, outcome)) = set.wait_any() {
        let (v, r, start) = submitted[token as usize];
        out.record(&vclients[v][r], outcome, start.elapsed());
        if next[v] < vclients[v].len() {
            submit(v, &mut next, &mut submitted);
        }
    }
    debug_assert!(
        next.iter().zip(&vclients).all(|(&n, reqs)| n == reqs.len()),
        "drained with requests left"
    );
    out
}

/// The comparison `load_sim --evented` reports and CI gates on.
#[derive(Debug, Clone)]
pub struct EventedReport {
    /// Configuration echo.
    pub config: EventedConfig,
    /// The thread-per-client blocking run (single-shard server).
    pub blocking: ServingRunStats,
    /// The evented run (sharded server, few driver threads).
    pub evented: EventedRunStats,
}

impl EventedReport {
    /// Evented throughput over blocking throughput (granted requests per
    /// second; > 1 means the evented front end is strictly faster).
    pub fn throughput_gain(&self) -> f64 {
        self.evented.stats.requests_per_second / self.blocking.requests_per_second.max(1e-12)
    }

    /// Blocking p99 latency over evented p99 latency (> 1 means the
    /// evented front end also has the shorter tail).
    pub fn p99_gain(&self) -> f64 {
        self.blocking.p99_latency_ms / self.evented.stats.p99_latency_ms.max(1e-12)
    }

    /// The acceptance gate: the evented run demonstrated the configured
    /// in-flight depth, beat the blocking driver on *both* throughput
    /// and tail latency, spread load across ≥ 2 shards without a hot
    /// shard, granted exactly what the blocking run granted, and — as
    /// always — zero over-spend and zero densifications anywhere.
    pub fn passes_smoke(&self) -> bool {
        let ev = &self.evented.stats;
        let bl = &self.blocking;
        self.throughput_gain() > 1.0
            && self.p99_gain() > 1.0
            && self.evented.peak_in_flight() >= self.config.target_in_flight
            && ev.answered == bl.answered
            && ev.rejected == 0
            && bl.rejected == 0
            && !ev.overspend
            && !bl.overspend
            && !ev.delta_overspend
            && !bl.delta_overspend
            && ev.densifications == 0
            && bl.densifications == 0
            && ev.coalesced_batches > 0
            && self.evented.active_shards() >= 2
            && self.evented.max_shard_fraction() <= 0.6
    }

    /// Serializes the report in the repo's `BENCH_*.json` style.
    pub fn to_json(&self, label: &str) -> String {
        let scfg = &self.config.serving;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"label\": \"{label}\",");
        let eps_levels = scfg
            .eps_levels
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  \"config\": {{ \"buckets\": {}, \"cuts\": {}, \"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \"spec_queries\": {}, \"window_ms\": {}, \"max_batch\": {}, \"workers\": {}, \"eps_levels\": [{}], \"tenant_budget\": {}, \"seed\": {}, \"shards\": {}, \"driver_threads\": {}, \"target_in_flight\": {} }},",
            scfg.buckets,
            scfg.cuts,
            scfg.tenants,
            scfg.clients,
            scfg.requests_per_client,
            scfg.spec_queries,
            scfg.window.as_secs_f64() * 1e3,
            scfg.max_batch,
            scfg.workers,
            eps_levels,
            scfg.tenant_budget,
            scfg.seed,
            self.config.shards,
            self.config.driver_threads,
            self.config.target_in_flight,
        );
        let _ = writeln!(
            out,
            "  \"units\": {{ \"throughput\": \"granted requests (and queries) per second\", \"latency\": \"client-observed submit-to-completion milliseconds\", \"in_flight\": \"peak concurrently submitted-but-unanswered requests, measured server-side\" }},"
        );
        let _ = writeln!(out, "  \"runs\": [");
        for (i, run) in [&self.blocking, &self.evented.stats]
            .into_iter()
            .enumerate()
        {
            let _ = writeln!(
                out,
                "    {{ \"mode\": \"{}\", \"wall_seconds\": {:.6}, \"answered\": {}, \"rejected\": {}, \"queries_answered\": {}, \"requests_per_second\": {:.3}, \"queries_per_second\": {:.3}, \"mean_squared_error\": {:.6e}, \"batches\": {}, \"coalesced_batches\": {}, \"mean_occupancy\": {:.3}, \"max_occupancy\": {}, \"cache_misses\": {}, \"cache_hits\": {}, \"peak_queue_depth\": {}, \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \"overspend\": {}, \"delta_overspend\": {}, \"densifications\": {} }}{}",
                run.mode,
                run.wall_seconds,
                run.answered,
                run.rejected,
                run.queries_answered,
                run.requests_per_second,
                run.queries_per_second,
                run.mean_squared_error,
                run.batches,
                run.coalesced_batches,
                run.mean_occupancy,
                run.max_occupancy,
                run.cache_misses,
                run.cache_hits,
                run.peak_queue_depth,
                run.p50_latency_ms,
                run.p99_latency_ms,
                run.overspend,
                run.delta_overspend,
                run.densifications,
                if i == 0 { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let peaks = self
            .evented
            .shard_peak_depths
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  \"evented\": {{ \"peak_in_flight\": {}, \"shard_peak_depths\": [{}], \"active_shards\": {}, \"max_shard_fraction\": {:.3}, \"stolen_batches\": {} }},",
            self.evented.peak_in_flight(),
            peaks,
            self.evented.active_shards(),
            self.evented.max_shard_fraction(),
            self.evented.stolen_batches,
        );
        let _ = writeln!(
            out,
            "  \"comparison\": {{ \"throughput_gain\": {:.3}, \"p99_gain\": {:.3}, \"strictly_faster\": {}, \"strictly_lower_p99\": {}, \"passes_smoke\": {} }}",
            self.throughput_gain(),
            self.p99_gain(),
            self.throughput_gain() > 1.0,
            self.p99_gain() > 1.0,
            self.passes_smoke(),
        );
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json(label))
    }
}

/// Runs the full comparison: the same trace through the blocking
/// thread-per-client driver (single-shard server) and the evented
/// drivers (sharded server).
pub fn run_evented_bench(cfg: &EventedConfig) -> EventedReport {
    let trace = build_trace(&cfg.serving);
    let blocking = run_blocking_mode(cfg, &trace);
    let evented = run_evented_mode(cfg, &trace);

    if !cfg.serving.quiet {
        let mut table = TableWriter::new(format!(
            "Evented front end — {} virtual clients × {} requests, {} shards, {} driver threads",
            cfg.serving.clients, cfg.serving.requests_per_client, cfg.shards, cfg.driver_threads
        ));
        table.header(&[
            "mode",
            "wall s",
            "req/s",
            "p50 ms",
            "p99 ms",
            "peak in-flight",
            "batches",
            "stolen",
        ]);
        table.row(vec![
            blocking.mode.to_string(),
            format!("{:.3}", blocking.wall_seconds),
            format!("{:.1}", blocking.requests_per_second),
            format!("{:.1}", blocking.p50_latency_ms),
            format!("{:.1}", blocking.p99_latency_ms),
            blocking.peak_queue_depth.to_string(),
            blocking.batches.to_string(),
            "0".to_string(),
        ]);
        table.row(vec![
            evented.stats.mode.to_string(),
            format!("{:.3}", evented.stats.wall_seconds),
            format!("{:.1}", evented.stats.requests_per_second),
            format!("{:.1}", evented.stats.p50_latency_ms),
            format!("{:.1}", evented.stats.p99_latency_ms),
            evented.stats.peak_queue_depth.to_string(),
            evented.stats.batches.to_string(),
            evented.stolen_batches.to_string(),
        ]);
        println!("{}", table.render());
    }

    EventedReport {
        config: cfg.clone(),
        blocking,
        evented,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EventedConfig {
        EventedConfig {
            serving: ServingConfig {
                buckets: 64,
                cuts: 8,
                tenants: 2,
                clients: 4,
                requests_per_client: 8,
                burst: 8,
                spec_queries: 4,
                max_batch: 4,
                workers: 2,
                // 16 requests per tenant × ε 0.25 = 4: everything grants.
                tenant_budget: 10.0,
                quiet: true,
                ..ServingConfig::default()
            },
            shards: 4,
            driver_threads: 2,
            target_in_flight: 8,
        }
    }

    #[test]
    fn evented_bench_grants_the_whole_trace_and_reports() {
        let cfg = tiny();
        let report = run_evented_bench(&cfg);

        // Both drivers grant every request: the budgets never bind, so
        // any divergence would be a lost or double-delivered completion.
        assert_eq!(report.blocking.answered, 32);
        assert_eq!(report.evented.stats.answered, 32);
        assert_eq!(report.blocking.rejected, 0);
        assert_eq!(report.evented.stats.rejected, 0);

        // The hard invariants.
        assert!(!report.blocking.overspend);
        assert!(!report.evented.stats.overspend);
        assert_eq!(report.blocking.densifications, 0);
        assert_eq!(report.evented.stats.densifications, 0);

        // Token-indexed bookkeeping lined completions up with the right
        // trace requests: noisy answers differ from exact ones by a
        // finite, positive amount (a mispairing would explode the MSE;
        // a zero would mean no release was measured at all).
        assert!(report.evented.stats.mean_squared_error > 0.0);
        assert!(report.evented.stats.mean_squared_error.is_finite());

        // Shard accounting is present and consistent.
        assert_eq!(report.evented.shard_peak_depths.len(), 4);
        assert!(report.evented.active_shards() >= 1);
        let json = report.to_json("test");
        assert!(json.contains("\"mode\": \"blocking\""));
        assert!(json.contains("\"mode\": \"evented\""));
        assert!(json.contains("\"peak_in_flight\""));
        assert!(json.contains("\"throughput_gain\""));
    }

    #[test]
    fn driver_partition_covers_every_virtual_client_once() {
        // The round-robin deal (clients d, d+T, …) must partition the
        // trace: 4 virtual clients over 3 drivers → shares of 2/1/1.
        let cfg = tiny();
        let trace = build_trace(&cfg.serving);
        let mut seen = vec![0usize; trace.per_client.len()];
        for d in 0..3 {
            for (c, _) in trace.per_client.iter().enumerate().skip(d).step_by(3) {
                seen[c] += 1;
            }
        }
        assert_eq!(seen, vec![1; trace.per_client.len()]);
    }
}
