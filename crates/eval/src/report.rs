//! Plain-text tables and CSV dumps for experiment results.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A fixed-width text table builder; prints figure-shaped result grids.
#[derive(Debug, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl TableWriter {
    /// Starts a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Sets the column headers.
    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.header.is_empty() {
            let line: Vec<String> = self
                .header
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// One flat record per measured cell, serialized to CSV.
#[derive(Debug, Clone, Serialize)]
pub struct CsvRecord {
    /// Figure identifier, e.g. `"fig4"`.
    pub figure: String,
    /// Dataset name.
    pub dataset: String,
    /// Workload family.
    pub workload: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Name of the swept parameter (`"n"`, `"m"`, `"gamma"`, …).
    pub x_name: String,
    /// Value of the swept parameter.
    pub x: f64,
    /// Privacy budget.
    pub epsilon: f64,
    /// Closed-form expected average squared error.
    pub analytic_avg_error: f64,
    /// Monte-Carlo average squared error.
    pub empirical_avg_error: f64,
    /// Mechanism compile time (decomposition time for LRM), seconds.
    pub compile_seconds: f64,
    /// Per-batch answer time, seconds.
    pub answer_seconds: f64,
}

/// Writes records as a CSV file (no external csv crate: the fields are
/// all numeric or alphanumeric, so plain joining is unambiguous).
pub fn write_csv(path: &Path, records: &[CsvRecord]) -> io::Result<()> {
    let mut out = String::from(
        "figure,dataset,workload,mechanism,x_name,x,epsilon,analytic_avg_error,empirical_avg_error,compile_seconds,answer_seconds\n",
    );
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            r.figure,
            r.dataset,
            r.workload,
            r.mechanism,
            r.x_name,
            r.x,
            r.epsilon,
            r.analytic_avg_error,
            r.empirical_avg_error,
            r.compile_seconds,
            r.answer_seconds
        );
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TableWriter::new("demo");
        t.header(&["n", "LM", "LRM"]);
        t.row(vec!["128".into(), "1.5e6".into(), "3.2e4".into()]);
        t.row(vec!["8192".into(), "9.917e7".into(), "8e4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("n"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines share the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("lrm_eval_test_csv");
        let path = dir.join("out.csv");
        let rec = CsvRecord {
            figure: "fig4".into(),
            dataset: "Search Logs".into(),
            workload: "WDiscrete".into(),
            mechanism: "LRM".into(),
            x_name: "n".into(),
            x: 128.0,
            epsilon: 0.1,
            analytic_avg_error: 123.5,
            empirical_avg_error: 120.0,
            compile_seconds: 0.5,
            answer_seconds: 0.001,
        };
        write_csv(&path, &[rec]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("figure,dataset"));
        assert!(content.contains("fig4,Search Logs,WDiscrete,LRM,n,128,0.1,123.5,120,0.5,0.001"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
