//! Regenerates the paper's Figure 8 via the `fig8` experiment.
//! Flags: `--full`, `--trials K`, `--seed S`, `--csv DIR`, `--quiet`.

use lrm_eval::experiments::{fig8, ExperimentContext};
use lrm_eval::report::write_csv;

fn main() {
    let ctx = match ExperimentContext::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let records = fig8::run(&ctx);
    if let Some(dir) = &ctx.csv_dir {
        write_csv(&dir.join("fig8.csv"), &records).expect("CSV write failed");
    }
}
