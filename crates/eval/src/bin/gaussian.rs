//! Mixed-ε Gaussian serving bench: cross-ε (δ-class) coalescing against
//! the ε-keyed fragmented scheduler on the same (ε, δ)-DP trace.
//!
//! ```text
//! gaussian [--n N] [--cuts C] [--tenants T] [--clients K] [--requests R]
//!          [--burst B] [--spec-queries Q] [--window-ms W] [--max-batch M]
//!          [--workers P] [--delta D] [--tenant-budget EB] [--tenant-delta TD]
//!          [--seed S] [--out PATH] [--quiet]
//! gaussian --smoke [--budget-seconds S] [--quiet]
//! ```
//!
//! `--smoke` runs the CI regression gate on the pinned mixed-ε
//! configuration and fails unless (a) cross-ε coalescing sustains
//! **strictly higher throughput** than the ε-fragmented scheduler,
//! (b) at least one batch actually mixed ε levels (and the fragmented
//! run mixed none), (c) **zero** tenants were granted more ε *or* δ than
//! they registered, and (d) **zero** operator densifications occurred.
//! The default (non-smoke) run writes the `BENCH_8.json` report.

use lrm_eval::experiments::gaussian::run_gaussian_bench;
use lrm_eval::experiments::serving::ServingConfig;
use lrm_eval::fail;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    cfg: ServingConfig,
    out: Option<PathBuf>,
    smoke: bool,
    budget_seconds: f64,
    /// Shaping flags seen on the command line; `--smoke` is a pinned
    /// configuration and refuses these rather than silently ignoring
    /// them (same contract as `load_sim`).
    shaping_flags: Vec<&'static str>,
    saw_budget: bool,
}

fn default_cfg() -> ServingConfig {
    ServingConfig {
        noise_delta: 1e-6,
        tenant_delta: 1e-4,
        eps_levels: vec![0.1, 0.25, 0.5],
        rank_close: false,
        ..ServingConfig::default()
    }
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cfg: default_cfg(),
        out: None,
        smoke: false,
        budget_seconds: 150.0,
        shaping_flags: Vec::new(),
        saw_budget: false,
    };
    fn next_parse<T: std::str::FromStr>(
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<T, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag}: {v}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--quiet" => out.cfg.quiet = true,
            "--n" => {
                out.shaping_flags.push("--n");
                out.cfg.buckets = next_parse("--n", &mut args)?;
            }
            "--cuts" => {
                out.shaping_flags.push("--cuts");
                out.cfg.cuts = next_parse("--cuts", &mut args)?;
            }
            "--tenants" => {
                out.shaping_flags.push("--tenants");
                out.cfg.tenants = next_parse("--tenants", &mut args)?;
            }
            "--clients" => {
                out.shaping_flags.push("--clients");
                out.cfg.clients = next_parse("--clients", &mut args)?;
            }
            "--requests" => {
                out.shaping_flags.push("--requests");
                out.cfg.requests_per_client = next_parse("--requests", &mut args)?;
            }
            "--burst" => {
                out.shaping_flags.push("--burst");
                out.cfg.burst = next_parse("--burst", &mut args)?;
            }
            "--spec-queries" => {
                out.shaping_flags.push("--spec-queries");
                out.cfg.spec_queries = next_parse("--spec-queries", &mut args)?;
            }
            "--window-ms" => {
                out.shaping_flags.push("--window-ms");
                let ms: f64 = next_parse("--window-ms", &mut args)?;
                out.cfg.window = Duration::from_secs_f64(ms / 1e3);
            }
            "--max-batch" => {
                out.shaping_flags.push("--max-batch");
                out.cfg.max_batch = next_parse("--max-batch", &mut args)?;
            }
            "--workers" => {
                out.shaping_flags.push("--workers");
                out.cfg.workers = next_parse("--workers", &mut args)?;
            }
            "--delta" => {
                out.shaping_flags.push("--delta");
                out.cfg.noise_delta = next_parse("--delta", &mut args)?;
            }
            "--tenant-budget" => {
                out.shaping_flags.push("--tenant-budget");
                out.cfg.tenant_budget = next_parse("--tenant-budget", &mut args)?;
            }
            "--tenant-delta" => {
                out.shaping_flags.push("--tenant-delta");
                out.cfg.tenant_delta = next_parse("--tenant-delta", &mut args)?;
            }
            "--seed" => {
                out.shaping_flags.push("--seed");
                out.cfg.seed = next_parse("--seed", &mut args)?;
            }
            "--out" => {
                out.shaping_flags.push("--out");
                let v = args.next().ok_or("--out needs a path")?;
                out.out = Some(PathBuf::from(v));
            }
            "--budget-seconds" => {
                out.saw_budget = true;
                out.budget_seconds = next_parse("--budget-seconds", &mut args)?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --smoke, --n, --cuts, --tenants, --clients, --requests, --burst, --spec-queries, --window-ms, --max-batch, --workers, --delta, --tenant-budget, --tenant-delta, --seed, --out, --quiet, --budget-seconds)"
                ))
            }
        }
    }
    Ok(out)
}

/// Binary name for progress routing (see `lrm_eval::progress`).
const BIN: &str = "gaussian";

fn main() -> ExitCode {
    lrm_eval::progress::init_tracing(BIN);
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            fail!(BIN, "gaussian: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        if !args.shaping_flags.is_empty() {
            fail!(
                BIN,
                "gaussian: --smoke runs a pinned configuration and does not accept {}",
                args.shaping_flags.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let cfg = ServingConfig {
            quiet: args.cfg.quiet,
            ..ServingConfig::gaussian_smoke()
        };
        let t0 = Instant::now();
        let report = run_gaussian_bench(&cfg);
        let elapsed = t0.elapsed().as_secs_f64();
        println!(
            "smoke: speedup {:.2}x over eps-fragmented, {} cross-eps batches \
             (mean occupancy {:.2}), eps overspend {}, delta overspend {}, densifications {}",
            report.speedup(),
            report.coalesced.cross_eps_batches,
            report.coalesced.mean_occupancy,
            report.coalesced.overspend || report.fragmented.overspend,
            report.coalesced.delta_overspend || report.fragmented.delta_overspend,
            report.coalesced.densifications + report.fragmented.densifications,
        );
        let mut failed = false;
        if report.speedup() <= 1.0 {
            fail!(BIN,
                "FAIL: cross-eps throughput {:.1} req/s is not strictly above the eps-fragmented {:.1} req/s",
                report.coalesced.requests_per_second, report.fragmented.requests_per_second
            );
            failed = true;
        }
        if report.coalesced.cross_eps_batches == 0 {
            fail!(
                BIN,
                "FAIL: the coalescing run never mixed eps levels in a batch"
            );
            failed = true;
        }
        if report.fragmented.cross_eps_batches != 0 {
            fail!(
                BIN,
                "FAIL: the eps-fragmented baseline mixed eps levels (not a baseline)"
            );
            failed = true;
        }
        if report.coalesced.overspend || report.fragmented.overspend {
            fail!(
                BIN,
                "FAIL: a tenant was granted more eps than it registered"
            );
            failed = true;
        }
        if report.coalesced.delta_overspend || report.fragmented.delta_overspend {
            fail!(
                BIN,
                "FAIL: a tenant was granted more delta than it registered"
            );
            failed = true;
        }
        if report.coalesced.densifications + report.fragmented.densifications != 0 {
            fail!(
                BIN,
                "FAIL: the serving path densified a structured workload"
            );
            failed = true;
        }
        if elapsed > args.budget_seconds {
            fail!(
                BIN,
                "FAIL: smoke took {elapsed:.1}s > budget {:.1}s",
                args.budget_seconds
            );
            failed = true;
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.saw_budget {
        fail!(BIN, "gaussian: --budget-seconds only applies to --smoke");
        return ExitCode::FAILURE;
    }
    let report = run_gaussian_bench(&args.cfg);
    println!(
        "cross-eps coalescing vs eps-fragmented: {:.2}x throughput, {} cross-eps batches, smoke gate {}",
        report.speedup(),
        report.coalesced.cross_eps_batches,
        if report.passes_smoke() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let label = format!(
        "gaussian serving bench, {} clients x {} requests, {} tenants, eps levels {:?}, delta {:e} (cross-eps coalescing vs eps-fragmented)",
        report.config.clients,
        report.config.requests_per_client,
        report.config.tenants,
        report.config.eps_levels,
        report.config.noise_delta
    );
    if let Some(path) = &args.out {
        if let Err(e) = report.write(path, &label) {
            fail!(BIN, "gaussian: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    } else {
        println!("{}", report.to_json(&label));
    }
    if report.passes_smoke() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
