//! Prints Table 1 of the paper (the experiment parameter grid) together
//! with this reproduction's scaled-down quick grid, so readers can see at
//! a glance what `--full` changes.

use lrm_eval::params;
use lrm_eval::report::TableWriter;

fn join<T: std::fmt::Display>(xs: &[T]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let mut table = TableWriter::new("Table 1 — parameters (paper grid vs quick default)");
    table.header(&["parameter", "paper grid (--full)", "quick grid", "default"]);
    table.row(vec![
        "gamma".into(),
        join(&params::GAMMAS),
        join(&params::GAMMAS),
        params::DEFAULT_GAMMA.to_string(),
    ]);
    table.row(vec![
        "r / rank(W)".into(),
        join(&params::RANK_RATIOS),
        join(&params::RANK_RATIOS),
        params::DEFAULT_RANK_RATIO.to_string(),
    ]);
    table.row(vec![
        "n".into(),
        join(&params::DOMAIN_SIZES_FULL),
        join(&params::DOMAIN_SIZES_QUICK),
        format!(
            "{} (full: {})",
            params::DEFAULT_DOMAIN_QUICK,
            params::DEFAULT_DOMAIN_FULL
        ),
    ]);
    table.row(vec![
        "m".into(),
        join(&params::QUERY_SIZES_FULL),
        join(&params::QUERY_SIZES_QUICK),
        format!(
            "{} (full: {})",
            params::DEFAULT_QUERIES_QUICK,
            params::DEFAULT_QUERIES_FULL
        ),
    ]);
    table.row(vec![
        "s / min(m,n)".into(),
        join(&params::S_RATIOS),
        join(&params::S_RATIOS),
        params::DEFAULT_S_RATIO.to_string(),
    ]);
    table.row(vec![
        "epsilon".into(),
        join(&params::EPSILONS),
        join(&params::EPSILONS),
        params::EPSILON_MAIN.to_string(),
    ]);
    table.row(vec![
        "trials".into(),
        params::DEFAULT_TRIALS.to_string(),
        params::DEFAULT_TRIALS.to_string(),
        params::DEFAULT_TRIALS.to_string(),
    ]);
    println!("{}", table.render());
}
