//! Crash–restart fault-injection gate for the fault-contained serving
//! runtime.
//!
//! ```text
//! chaos [--cycles N] [--seed S] [--state-dir DIR] [--quiet]
//! chaos --smoke [--quiet]
//! ```
//!
//! Each cycle builds a fresh server over one shared durable state
//! directory, injects one fault from the fixed rotation (worker panic,
//! compile stall, settle crash, torn ε-journal, truncated farm queue),
//! drives real traffic, and shuts down; the run fails unless every
//! invariant holds across all cycles — no tenant over-spend in either
//! ledger column, no duplicate noise release, no starved cycle, no
//! unresolved ticket, and degraded releases within 2× the compile
//! deadline. `--smoke` runs the pinned CI configuration (one full fault
//! rotation plus the verification reopen), then repeats the failpoint
//! faults on a Gaussian (ε, δ) server — a settle crash must replay its
//! intent as spent in *both* the ε and δ columns.
//!
//! The failpoint-driven faults need a `debug_assertions` build (the
//! default `cargo run` dev profile); in release builds the harness still
//! exercises restarts and file damage and says so.

use lrm_eval::experiments::chaos::{run_chaos, ChaosConfig};
use lrm_eval::fail;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: ChaosConfig,
    smoke: bool,
    /// Shaping flags seen on the command line; `--smoke` is a pinned
    /// configuration and refuses these rather than silently ignoring
    /// them (same contract as `load_sim`).
    shaping_flags: Vec<&'static str>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cfg: ChaosConfig::default(),
        smoke: false,
        shaping_flags: Vec::new(),
    };
    fn next_parse<T: std::str::FromStr>(
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<T, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag}: {v}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--quiet" => out.cfg.quiet = true,
            "--cycles" => {
                out.shaping_flags.push("--cycles");
                out.cfg.cycles = next_parse("--cycles", &mut args)?;
            }
            "--seed" => {
                out.shaping_flags.push("--seed");
                out.cfg.seed = next_parse("--seed", &mut args)?;
            }
            "--state-dir" => {
                out.shaping_flags.push("--state-dir");
                let v = args.next().ok_or("--state-dir needs a path")?;
                out.cfg.state_dir = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --smoke, --cycles N, --seed S, --state-dir DIR, --quiet)"
                ))
            }
        }
    }
    Ok(out)
}

/// Binary name for progress routing (see `lrm_eval::progress`).
const BIN: &str = "chaos";

fn main() -> ExitCode {
    lrm_eval::progress::init_tracing(BIN);
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            fail!(BIN, "chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = if args.smoke {
        if !args.shaping_flags.is_empty() {
            fail!(
                BIN,
                "chaos: --smoke runs a pinned configuration and does not accept {}",
                args.shaping_flags.join(", ")
            );
            return ExitCode::FAILURE;
        }
        ChaosConfig {
            quiet: args.cfg.quiet,
            ..ChaosConfig::smoke()
        }
    } else {
        args.cfg
    };

    if !cfg!(debug_assertions) {
        fail!(
            BIN,
            "chaos: release build — failpoint faults are no-ops; \
             running restarts and file-damage faults only"
        );
    }
    let report = run_chaos(&cfg);
    println!("{}", report.summary());
    let mut passed = report.passes();

    if args.smoke {
        // Second pass: the failpoint faults against a Gaussian server,
        // where every crash–restart invariant binds on both (ε, δ)
        // ledger columns.
        let gaussian_cfg = ChaosConfig {
            quiet: cfg.quiet,
            ..ChaosConfig::gaussian_smoke()
        };
        let gaussian = run_chaos(&gaussian_cfg);
        println!("gaussian: {}", gaussian.summary());
        passed &= gaussian.passes();
    }

    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
