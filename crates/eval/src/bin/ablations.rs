//! Runs the Algorithm-1 ablation suite (DESIGN.md §8): β schedules, inner
//! solver budgets, the feasibility polish, and range-structure vs low-rank
//! workloads. Flags: `--full`, `--seed S`, `--csv DIR`, `--quiet`.

use lrm_eval::experiments::{ablations, ExperimentContext};
use lrm_eval::report::write_csv;

fn main() {
    let ctx = match ExperimentContext::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let records = ablations::run(&ctx);
    if let Some(dir) = &ctx.csv_dir {
        write_csv(&dir.join("ablations.csv"), &records).expect("CSV write failed");
    }
}
