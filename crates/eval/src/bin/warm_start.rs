//! Warm-started compile farm benchmark: iteration-count reduction and
//! compile-latency percentiles on a near-duplicate panel trace, cold vs
//! warmed vs restarted-with-store (`BENCH_6.json`).
//!
//! ```text
//! warm_start [--n N] [--shapes K] [--cuts C] [--seed S]
//!            [--store-dir DIR] [--out PATH] [--quiet]
//! warm_start --smoke [--budget-seconds S] [--quiet]
//! ```
//!
//! `--smoke` runs the CI regression gate on a pinned small configuration
//! and fails unless (a) every near-duplicate after the first **warm-
//! starts** and converges in **strictly fewer** ALM iterations than its
//! cold baseline (median reduction ≥ 30%), (b) a restarted engine over
//! the same strategy store answers the whole prior working set with
//! **zero** full recompiles (exact disk hits only) and warm-starts a
//! shape it has never seen from a store-loaded seed, and (c) a restarted
//! *server* replays the working set end to end with zero engine cache
//! misses.

use lrm_eval::experiments::warm_start::{run_warm_start_bench, WarmStartConfig};
use lrm_eval::fail;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    cfg: WarmStartConfig,
    out: Option<PathBuf>,
    smoke: bool,
    budget_seconds: f64,
    /// Shaping flags seen on the command line; `--smoke` is a pinned
    /// configuration and refuses these rather than silently ignoring
    /// them (same contract as `scaling_sweep` and `load_sim`).
    shaping_flags: Vec<&'static str>,
    saw_budget: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cfg: WarmStartConfig::default(),
        out: None,
        smoke: false,
        budget_seconds: 150.0,
        shaping_flags: Vec::new(),
        saw_budget: false,
    };
    fn next_parse<T: std::str::FromStr>(
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<T, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag}: {v}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--quiet" => out.cfg.quiet = true,
            "--n" => {
                out.shaping_flags.push("--n");
                out.cfg.buckets = next_parse("--n", &mut args)?;
            }
            "--shapes" => {
                out.shaping_flags.push("--shapes");
                out.cfg.shapes = next_parse("--shapes", &mut args)?;
            }
            "--cuts" => {
                out.shaping_flags.push("--cuts");
                out.cfg.cuts = next_parse("--cuts", &mut args)?;
            }
            "--seed" => {
                out.shaping_flags.push("--seed");
                out.cfg.seed = next_parse("--seed", &mut args)?;
            }
            "--store-dir" => {
                out.shaping_flags.push("--store-dir");
                let v = args.next().ok_or("--store-dir needs a path")?;
                out.cfg.store_dir = Some(PathBuf::from(v));
            }
            "--out" => {
                out.shaping_flags.push("--out");
                let v = args.next().ok_or("--out needs a path")?;
                out.out = Some(PathBuf::from(v));
            }
            "--budget-seconds" => {
                out.saw_budget = true;
                out.budget_seconds = next_parse("--budget-seconds", &mut args)?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --smoke, --n, --shapes, --cuts, --seed, --store-dir, --out, --quiet, --budget-seconds)"
                ))
            }
        }
    }
    Ok(out)
}

/// Binary name for progress routing (see `lrm_eval::progress`).
const BIN: &str = "warm_start";

fn main() -> ExitCode {
    lrm_eval::progress::init_tracing(BIN);
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            fail!(BIN, "warm_start: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        if !args.shaping_flags.is_empty() {
            fail!(
                BIN,
                "warm_start: --smoke runs a pinned configuration and does not accept {}",
                args.shaping_flags.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let cfg = WarmStartConfig {
            quiet: args.cfg.quiet,
            ..WarmStartConfig::smoke()
        };
        let t0 = Instant::now();
        let report = run_warm_start_bench(&cfg);
        let elapsed = t0.elapsed().as_secs_f64();
        println!(
            "smoke: median iteration reduction {:.1}%, restart {} disk hits / {} misses, \
             server replay {} answered / {} misses",
            report.median_reduction * 100.0,
            report.restart_disk_hits,
            report.restart_misses,
            report.server_answered,
            report.server_misses,
        );
        let mut failed = false;
        if report.median_reduction < 0.30 {
            fail!(
                BIN,
                "FAIL: median warm-start iteration reduction {:.1}% is below the 30% gate",
                report.median_reduction * 100.0
            );
            failed = true;
        }
        for s in report.shapes.iter().skip(1) {
            if !s.warm_started {
                fail!(BIN,
                    "FAIL: the boundary-{} near-duplicate did not warm-start from the similarity index",
                    s.nudge
                );
                failed = true;
            } else if s.warm_iterations >= s.cold_iterations {
                fail!(BIN,
                    "FAIL: the boundary-{} near-duplicate took {} warm iterations, not strictly fewer than {} cold",
                    s.nudge, s.warm_iterations, s.cold_iterations
                );
                failed = true;
            }
        }
        if report.restart_misses != 0 || report.restart_disk_hits != cfg.shapes as u64 {
            fail!(BIN,
                "FAIL: a restarted engine recompiled the working set ({} disk hits, {} misses over {} shapes)",
                report.restart_disk_hits, report.restart_misses, cfg.shapes
            );
            failed = true;
        }
        if !report.restart_warm_start {
            fail!(
                BIN,
                "FAIL: a restarted engine did not warm-start a new shape from the store"
            );
            failed = true;
        }
        if report.server_misses != 0 || report.server_answered != cfg.shapes as u64 {
            fail!(BIN,
                "FAIL: a restarted server replayed the working set with {} answered and {} cache misses",
                report.server_answered, report.server_misses
            );
            failed = true;
        }
        if elapsed > args.budget_seconds {
            fail!(
                BIN,
                "FAIL: smoke took {elapsed:.1}s > budget {:.1}s",
                args.budget_seconds
            );
            failed = true;
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.saw_budget {
        fail!(BIN, "warm_start: --budget-seconds only applies to --smoke");
        return ExitCode::FAILURE;
    }
    let report = run_warm_start_bench(&args.cfg);
    let label = format!(
        "warm-started compile farm, {} near-duplicate {}-cut panels (single-boundary nudges) over n = {}, cold vs warmed vs restarted-with-store",
        report.config.shapes, report.config.cuts, report.config.buckets,
    );
    if let Some(path) = &args.out {
        if let Err(e) = report.write(path, &label) {
            fail!(BIN, "warm_start: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    } else {
        println!("{}", report.to_json(&label));
    }
    if report.passes_smoke() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
