//! Multi-tenant serving load harness: the coalescing `lrm-server` against
//! a per-query baseline on the same trace, at equal ε.
//!
//! ```text
//! load_sim [--n N] [--cuts C] [--tenants T] [--clients K] [--requests R]
//!          [--burst B] [--spec-queries Q] [--window-ms W] [--max-batch M]
//!          [--workers P] [--eps E] [--tenant-budget EB] [--seed S]
//!          [--out PATH] [--quiet]
//! load_sim --smoke [--budget-seconds S] [--quiet]
//! load_sim --evented [--out PATH] [--quiet]
//! ```
//!
//! `--smoke` runs the CI regression gate on a pinned small configuration
//! and fails unless (a) the coalescing run sustains **strictly higher
//! throughput** than the per-query baseline, (b) **zero** tenants were
//! granted more ε than they registered (within the ledger's documented
//! one-slack bound), (c) **zero** operator densifications occurred in
//! either run, and (d) at least one batch actually coalesced. The smoke
//! runs in its own process, which is what makes the global densification
//! counter assertable. After the pure gate it runs the mixed-ε Gaussian
//! gate ([`ServingConfig::gaussian_smoke`]) so one entry point covers
//! both noise flavors; the `gaussian` binary runs the same gate alone.
//! The third pass is the evented front-end gate
//! ([`EventedConfig::smoke`]): ≥ 10⁴ requests concurrently in flight
//! from a handful of driver threads over the sharded scheduler, with
//! strictly higher throughput *and* strictly lower p99 than the
//! thread-per-client blocking driver at equal ε — and, as everywhere,
//! zero over-spend and zero densifications. `--evented` runs that same
//! pinned comparison alone and writes the `BENCH_9.json`-style report.
//! The fourth pass is the **observability overhead gate**: the pinned
//! coalescing configuration runs twice more, once with tracing disabled
//! and once streaming every span and event through a JSON-lines
//! subscriber into a sink, and fails if tracing costs more than 5% of
//! the untraced throughput.
//!
//! Set `LRM_TRACE=<path>` on any invocation to capture the full
//! request-lifecycle trace (and the binary's own progress events) as
//! JSON lines at that path.

use lrm_eval::experiments::evented::{run_evented_bench, EventedConfig};
use lrm_eval::experiments::gaussian::run_gaussian_bench;
use lrm_eval::experiments::serving::{
    build_trace, run_serving_bench, run_serving_mode, ServingConfig, ServingMode,
};
use lrm_eval::fail;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    cfg: ServingConfig,
    out: Option<PathBuf>,
    smoke: bool,
    evented: bool,
    budget_seconds: f64,
    /// Shaping flags seen on the command line; `--smoke` is a pinned
    /// configuration and refuses these rather than silently ignoring
    /// them (same contract as `scaling_sweep`).
    shaping_flags: Vec<&'static str>,
    saw_budget: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cfg: ServingConfig::default(),
        out: None,
        smoke: false,
        evented: false,
        budget_seconds: 150.0,
        shaping_flags: Vec::new(),
        saw_budget: false,
    };
    fn next_parse<T: std::str::FromStr>(
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<T, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag}: {v}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--evented" => out.evented = true,
            "--quiet" => out.cfg.quiet = true,
            "--n" => {
                out.shaping_flags.push("--n");
                out.cfg.buckets = next_parse("--n", &mut args)?;
            }
            "--cuts" => {
                out.shaping_flags.push("--cuts");
                out.cfg.cuts = next_parse("--cuts", &mut args)?;
            }
            "--tenants" => {
                out.shaping_flags.push("--tenants");
                out.cfg.tenants = next_parse("--tenants", &mut args)?;
            }
            "--clients" => {
                out.shaping_flags.push("--clients");
                out.cfg.clients = next_parse("--clients", &mut args)?;
            }
            "--requests" => {
                out.shaping_flags.push("--requests");
                out.cfg.requests_per_client = next_parse("--requests", &mut args)?;
            }
            "--burst" => {
                out.shaping_flags.push("--burst");
                out.cfg.burst = next_parse("--burst", &mut args)?;
            }
            "--spec-queries" => {
                out.shaping_flags.push("--spec-queries");
                out.cfg.spec_queries = next_parse("--spec-queries", &mut args)?;
            }
            "--window-ms" => {
                out.shaping_flags.push("--window-ms");
                let ms: f64 = next_parse("--window-ms", &mut args)?;
                out.cfg.window = Duration::from_secs_f64(ms / 1e3);
            }
            "--max-batch" => {
                out.shaping_flags.push("--max-batch");
                out.cfg.max_batch = next_parse("--max-batch", &mut args)?;
            }
            "--workers" => {
                out.shaping_flags.push("--workers");
                out.cfg.workers = next_parse("--workers", &mut args)?;
            }
            "--eps" => {
                out.shaping_flags.push("--eps");
                out.cfg.eps_request = next_parse("--eps", &mut args)?;
            }
            "--tenant-budget" => {
                out.shaping_flags.push("--tenant-budget");
                out.cfg.tenant_budget = next_parse("--tenant-budget", &mut args)?;
            }
            "--seed" => {
                out.shaping_flags.push("--seed");
                out.cfg.seed = next_parse("--seed", &mut args)?;
            }
            "--out" => {
                out.shaping_flags.push("--out");
                let v = args.next().ok_or("--out needs a path")?;
                out.out = Some(PathBuf::from(v));
            }
            "--budget-seconds" => {
                out.saw_budget = true;
                out.budget_seconds = next_parse("--budget-seconds", &mut args)?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --smoke, --evented, --n, --cuts, --tenants, --clients, --requests, --burst, --spec-queries, --window-ms, --max-batch, --workers, --eps, --tenant-budget, --seed, --out, --quiet, --budget-seconds)"
                ))
            }
        }
    }
    Ok(out)
}

/// Binary name for progress routing (see `lrm_eval::progress`).
const BIN: &str = "load_sim";

fn main() -> ExitCode {
    lrm_eval::progress::init_tracing(BIN);
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            fail!(BIN, "load_sim: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        if !args.shaping_flags.is_empty() {
            fail!(
                BIN,
                "load_sim: --smoke runs a pinned configuration and does not accept {}",
                args.shaping_flags.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let cfg = ServingConfig {
            quiet: args.cfg.quiet,
            ..ServingConfig::smoke()
        };
        let t0 = Instant::now();
        let report = run_serving_bench(&cfg);
        println!(
            "smoke: speedup {:.2}x, {} coalesced batches (mean occupancy {:.2}), \
             error ratio {:.2}, overspend {}, densifications {}",
            report.speedup(),
            report.coalesced.coalesced_batches,
            report.coalesced.mean_occupancy,
            report.error_ratio(),
            report.coalesced.overspend || report.baseline.overspend,
            report.coalesced.densifications + report.baseline.densifications,
        );
        let mut failed = false;
        if report.speedup() <= 1.0 {
            fail!(BIN,
                "FAIL: coalescing throughput {:.1} req/s is not strictly above the baseline {:.1} req/s",
                report.coalesced.requests_per_second, report.baseline.requests_per_second
            );
            failed = true;
        }
        if report.coalesced.overspend || report.baseline.overspend {
            fail!(BIN, "FAIL: a tenant was granted more ε than it registered");
            failed = true;
        }
        if report.coalesced.densifications + report.baseline.densifications != 0 {
            fail!(
                BIN,
                "FAIL: the serving path densified a structured workload"
            );
            failed = true;
        }
        if report.coalesced.coalesced_batches == 0 {
            fail!(BIN, "FAIL: the coalescing run never coalesced a batch");
            failed = true;
        }

        // Second pass: the same gate under approximate DP, on a mixed-ε
        // trace. Cross-ε (δ-class) coalescing must strictly beat the
        // ε-keyed scheduler with zero ε or δ over-spend.
        let gaussian_cfg = ServingConfig {
            quiet: args.cfg.quiet,
            ..ServingConfig::gaussian_smoke()
        };
        let gaussian = run_gaussian_bench(&gaussian_cfg);
        println!(
            "smoke (gaussian): speedup {:.2}x over eps-fragmented, {} cross-eps batches, \
             eps overspend {}, delta overspend {}",
            gaussian.speedup(),
            gaussian.coalesced.cross_eps_batches,
            gaussian.coalesced.overspend || gaussian.fragmented.overspend,
            gaussian.coalesced.delta_overspend || gaussian.fragmented.delta_overspend,
        );
        if !gaussian.passes_smoke() {
            fail!(BIN,
                "FAIL: the mixed-eps gaussian gate did not hold (speedup {:.2}x, {} cross-eps batches)",
                gaussian.speedup(),
                gaussian.coalesced.cross_eps_batches
            );
            failed = true;
        }

        // Third pass: the evented front-end gate. A handful of driver
        // threads must hold ≥ 10⁴ requests in flight over the sharded
        // scheduler and strictly beat the thread-per-client blocking
        // driver on both throughput and p99 latency at equal ε.
        let evented_cfg = EventedConfig {
            serving: lrm_eval::experiments::serving::ServingConfig {
                quiet: args.cfg.quiet,
                ..EventedConfig::smoke().serving
            },
            ..EventedConfig::smoke()
        };
        let evented = run_evented_bench(&evented_cfg);
        println!(
            "smoke (evented): {:.2}x throughput, {:.2}x p99 gain, {} peak in-flight \
             across {} active shards (max share {:.2}), overspend {}",
            evented.throughput_gain(),
            evented.p99_gain(),
            evented.evented.peak_in_flight(),
            evented.evented.active_shards(),
            evented.evented.max_shard_fraction(),
            evented.blocking.overspend || evented.evented.stats.overspend,
        );
        if !evented.passes_smoke() {
            fail!(BIN,
                "FAIL: the evented front-end gate did not hold ({:.2}x throughput, {:.2}x p99 gain, {} peak in-flight, {} active shards, max shard share {:.2})",
                evented.throughput_gain(),
                evented.p99_gain(),
                evented.evented.peak_in_flight(),
                evented.evented.active_shards(),
                evented.evented.max_shard_fraction(),
            );
            failed = true;
        }

        // Fourth pass: the observability overhead gate. The pinned
        // coalescing trace runs twice more on identical configurations —
        // once with tracing fully disabled (the one-relaxed-load fast
        // path) and once streaming every span and event through a
        // JsonLines subscriber into a sink — and the traced run must
        // hold at least 95% of the untraced throughput.
        let obs_cfg = ServingConfig {
            quiet: true,
            ..ServingConfig::smoke()
        };
        let obs_trace = build_trace(&obs_cfg);
        let prior = lrm_obs::uninstall();
        let untraced = run_serving_mode(&obs_cfg, &obs_trace, ServingMode::Coalescing);
        lrm_obs::install(Arc::new(lrm_obs::JsonLines::new(std::io::sink())));
        let traced = run_serving_mode(&obs_cfg, &obs_trace, ServingMode::Coalescing);
        lrm_obs::uninstall();
        if let Some(prior) = prior {
            lrm_obs::install(prior);
        }
        println!(
            "smoke (obs): traced {:.1} req/s vs untraced {:.1} req/s ({:+.1}% throughput)",
            traced.requests_per_second,
            untraced.requests_per_second,
            100.0 * (traced.requests_per_second / untraced.requests_per_second.max(1e-12) - 1.0),
        );
        if traced.requests_per_second < 0.95 * untraced.requests_per_second {
            fail!(
                BIN,
                "FAIL: tracing costs more than 5% throughput ({:.1} req/s traced vs {:.1} req/s untraced)",
                traced.requests_per_second,
                untraced.requests_per_second
            );
            failed = true;
        }

        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > args.budget_seconds {
            fail!(
                BIN,
                "FAIL: smoke took {elapsed:.1}s > budget {:.1}s",
                args.budget_seconds
            );
            failed = true;
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.saw_budget {
        fail!(BIN, "load_sim: --budget-seconds only applies to --smoke");
        return ExitCode::FAILURE;
    }

    if args.evented {
        let refused: Vec<_> = args
            .shaping_flags
            .iter()
            .filter(|f| **f != "--out")
            .collect();
        if !refused.is_empty() {
            fail!(
                BIN,
                "load_sim: --evented runs a pinned configuration and does not accept {}",
                refused
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::FAILURE;
        }
        let cfg = EventedConfig {
            serving: lrm_eval::experiments::serving::ServingConfig {
                quiet: args.cfg.quiet,
                ..EventedConfig::smoke().serving
            },
            ..EventedConfig::smoke()
        };
        let report = run_evented_bench(&cfg);
        println!(
            "evented vs blocking front end: {:.2}x throughput, {:.2}x p99 gain, {} peak in-flight, gate {}",
            report.throughput_gain(),
            report.p99_gain(),
            report.evented.peak_in_flight(),
            if report.passes_smoke() { "PASS" } else { "FAIL" }
        );
        let label = format!(
            "evented front end, {} virtual clients x {} requests over {} shards / {} driver threads (evented vs blocking)",
            cfg.serving.clients, cfg.serving.requests_per_client, cfg.shards, cfg.driver_threads
        );
        if let Some(path) = &args.out {
            if let Err(e) = report.write(path, &label) {
                fail!(BIN, "load_sim: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("report written to {}", path.display());
        } else {
            println!("{}", report.to_json(&label));
        }
        return if report.passes_smoke() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let report = run_serving_bench(&args.cfg);
    println!(
        "coalescing vs per-query baseline: {:.2}x throughput, {:.2}x error ratio, smoke gate {}",
        report.speedup(),
        report.error_ratio(),
        if report.passes_smoke() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let label = format!(
        "serving load harness, {} clients x {} requests, {} tenants, eps {} (coalescing vs per-query)",
        report.config.clients,
        report.config.requests_per_client,
        report.config.tenants,
        report.config.eps_request
    );
    if let Some(path) = &args.out {
        if let Err(e) = report.write(path, &label) {
            fail!(BIN, "load_sim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    } else {
        println!("{}", report.to_json(&label));
    }
    if report.passes_smoke() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
