//! Runs every figure of the paper's evaluation in sequence (Figs. 2–9)
//! and optionally dumps all CSVs. Flags: `--full`, `--trials K`,
//! `--seed S`, `--csv DIR`, `--quiet`.

use lrm_eval::experiments::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, ExperimentContext};
use lrm_eval::report::write_csv;
use std::time::Instant;

type FigureRunner = fn(&ExperimentContext) -> Vec<lrm_eval::report::CsvRecord>;

fn main() {
    let ctx = match ExperimentContext::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let figures: [(&str, FigureRunner); 8] = [
        ("fig2", fig2::run),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
    ];

    for (name, runner) in figures {
        let t0 = Instant::now();
        let records = runner(&ctx);
        if !ctx.quiet {
            println!(
                "[{name}] {} cells in {:.1}s\n",
                records.len(),
                t0.elapsed().as_secs_f64()
            );
        }
        if let Some(dir) = &ctx.csv_dir {
            write_csv(&dir.join(format!("{name}.csv")), &records).expect("CSV write failed");
        }
    }
}
