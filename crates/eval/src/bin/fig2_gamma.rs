//! Regenerates Figure 2 of the paper: LRM error & decomposition time vs
//! the relaxation parameter γ. See `--help` notes in the crate docs:
//! flags are `--full`, `--trials K`, `--seed S`, `--csv DIR`, `--quiet`.

use lrm_eval::experiments::{fig2, ExperimentContext};
use lrm_eval::report::write_csv;

fn main() {
    let ctx = match ExperimentContext::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let records = fig2::run(&ctx);
    if let Some(dir) = &ctx.csv_dir {
        write_csv(&dir.join("fig2.csv"), &records).expect("CSV write failed");
    }
}
