//! Domain-scaling sweep: structured (sparse/implicit) vs forced-dense
//! workload path through `Engine::compile(MechanismKind::Lrm)`.
//!
//! ```text
//! scaling_sweep [--family prefix|range|coarse] [--queries M] [--dense-cap N]
//!               [--sizes N1,N2,...] [--seed S] [--out PATH] [--quiet]
//! scaling_sweep --smoke [--budget-seconds S]
//! ```
//!
//! `--smoke` runs the CI regression gate: one n = 4096 prefix compile on
//! the structured path, asserting (a) **zero operator densifications** —
//! the implicit fast path must not silently fall back to a dense `W` —
//! and (b) a wall-time budget (default 120 s), so a regression to
//! densification or dense-path costs fails the job rather than just
//! slowing it down. The smoke runs in its own process, which is what
//! makes the global densification counter assertable.

use lrm_eval::experiments::scaling::{run_scaling_sweep, ScalingConfig, ScalingFamily};
use lrm_eval::fail;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: ScalingConfig,
    out: Option<PathBuf>,
    smoke: bool,
    budget_seconds: f64,
    /// Sweep-shaping flags seen on the command line; `--smoke` uses a
    /// pinned configuration and refuses these rather than silently
    /// ignoring them.
    sweep_flags: Vec<&'static str>,
    /// Whether `--budget-seconds` was passed; only `--smoke` enforces a
    /// budget, so a non-smoke run refuses it rather than silently
    /// ignoring it.
    saw_budget: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cfg: ScalingConfig::default(),
        out: None,
        smoke: false,
        budget_seconds: 120.0,
        sweep_flags: Vec::new(),
        saw_budget: false,
    };
    while let Some(arg) = args.next() {
        // Each sweep-shaping arm records itself in `sweep_flags` so the
        // `--smoke` conflict check can never drift out of sync with the
        // flags that actually exist.
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--quiet" => out.cfg.quiet = true,
            "--family" => {
                out.sweep_flags.push("--family");
                let v = args.next().ok_or("--family needs prefix|range|coarse")?;
                out.cfg.family = match v.as_str() {
                    "prefix" => ScalingFamily::Prefix,
                    "range" => ScalingFamily::Range,
                    "coarse" => ScalingFamily::RangeCoarse,
                    other => return Err(format!("unknown family: {other}")),
                };
            }
            "--queries" => {
                out.sweep_flags.push("--queries");
                let v = args.next().ok_or("--queries needs a value")?;
                out.cfg.queries = v.parse().map_err(|_| format!("bad --queries: {v}"))?;
            }
            "--dense-cap" => {
                out.sweep_flags.push("--dense-cap");
                let v = args.next().ok_or("--dense-cap needs a value")?;
                out.cfg.dense_cap = v.parse().map_err(|_| format!("bad --dense-cap: {v}"))?;
            }
            "--sizes" => {
                out.sweep_flags.push("--sizes");
                let v = args.next().ok_or("--sizes needs a comma list")?;
                out.cfg.domain_sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad size: {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                out.sweep_flags.push("--seed");
                let v = args.next().ok_or("--seed needs a value")?;
                out.cfg.seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
            }
            "--out" => {
                out.sweep_flags.push("--out");
                let v = args.next().ok_or("--out needs a path")?;
                out.out = Some(PathBuf::from(v));
            }
            "--budget-seconds" => {
                out.saw_budget = true;
                let v = args.next().ok_or("--budget-seconds needs a value")?;
                out.budget_seconds = v.parse().map_err(|_| format!("bad budget: {v}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --smoke, --family, --queries, --dense-cap, --sizes, --seed, --out, --quiet, --budget-seconds)"
                ))
            }
        }
    }
    Ok(out)
}

/// Binary name for progress routing (see `lrm_eval::progress`).
const BIN: &str = "scaling_sweep";

fn main() -> ExitCode {
    lrm_eval::progress::init_tracing(BIN);
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            fail!(BIN, "scaling_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        // The smoke gate is a pinned configuration; refuse sweep-shaping
        // flags instead of silently ignoring them.
        if !args.sweep_flags.is_empty() {
            fail!(
                BIN,
                "scaling_sweep: --smoke runs a pinned n=4096 prefix config and does not accept {}",
                args.sweep_flags.join(", ")
            );
            return ExitCode::FAILURE;
        }
        // CI gate: n = 4096 prefix, structured path only, modest m so the
        // whole run stays well inside the budget on one CPU.
        let cfg = ScalingConfig {
            domain_sizes: vec![4096],
            queries: 64,
            family: ScalingFamily::Prefix,
            dense_cap: 0, // structured path only
            quiet: args.cfg.quiet,
            ..ScalingConfig::default()
        };
        let report = run_scaling_sweep(&cfg);
        let p = &report.points[0];
        println!(
            "smoke: n={} compiled in {:.3}s ({} densifications, rank {})",
            p.n, p.structured_seconds, p.densifications, p.structured_rank
        );
        if p.densifications != 0 {
            fail!(
                BIN,
                "FAIL: structured compile densified the workload {} time(s)",
                p.densifications
            );
            return ExitCode::FAILURE;
        }
        if p.structured_seconds > args.budget_seconds {
            fail!(
                BIN,
                "FAIL: structured compile took {:.3}s > budget {:.1}s",
                p.structured_seconds,
                args.budget_seconds
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if args.saw_budget {
        fail!(
            BIN,
            "scaling_sweep: --budget-seconds only applies to --smoke"
        );
        return ExitCode::FAILURE;
    }
    let report = run_scaling_sweep(&args.cfg);
    match report.structured_strictly_faster_from(1024) {
        Some(verdict) => {
            println!("structured strictly faster than dense at every measured n >= 1024: {verdict}")
        }
        None => println!("no dense comparison at n >= 1024 (dense path capped)"),
    }
    let label = format!(
        "domain scaling sweep, {} m={} (structured vs dense LRM compile)",
        report.family, report.queries
    );
    if let Some(path) = &args.out {
        if let Err(e) = report.write(path, &label) {
            fail!(BIN, "scaling_sweep: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    } else {
        println!("{}", report.to_json(&label));
    }
    ExitCode::SUCCESS
}
