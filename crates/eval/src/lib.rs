#![warn(missing_docs)]
//! Experiment harness regenerating every figure of the LRM paper's
//! evaluation (Section 6).
//!
//! One module — and one binary — per figure:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 2 (γ sweep) | [`experiments::fig2`] | `fig2_gamma` |
//! | Fig. 3 (r sweep) | [`experiments::fig3`] | `fig3_rank` |
//! | Fig. 4 (n sweep, WDiscrete) | [`experiments::fig4`] | `fig4_wdiscrete_n` |
//! | Fig. 5 (n sweep, WRange) | [`experiments::fig5`] | `fig5_wrange_n` |
//! | Fig. 6 (n sweep, WRelated) | [`experiments::fig6`] | `fig6_wrelated_n` |
//! | Fig. 7 (m sweep, WRange) | [`experiments::fig7`] | `fig7_wrange_m` |
//! | Fig. 8 (m sweep, WRelated) | [`experiments::fig8`] | `fig8_wrelated_m` |
//! | Fig. 9 (s sweep, WRelated) | [`experiments::fig9`] | `fig9_rank_s` |
//!
//! Each binary accepts `--full` (the paper's exact parameter grid — slow),
//! `--trials K` (Monte-Carlo repetitions; the paper uses 20), `--seed S`
//! and `--csv DIR`. Without `--full` a scaled-down grid with the same
//! qualitative shape runs in minutes on a laptop; `EXPERIMENTS.md` records
//! both.
//!
//! Every cell reports the **analytic** expected average squared error
//! (closed form; see `lrm_core::mechanism::Mechanism::expected_error`) and
//! the **empirical** mean over the trials, which doubles as a continuous
//! cross-check of the implementations.

pub mod experiments;
pub mod mechanisms;
pub mod params;
pub mod progress;
pub mod report;
pub mod runner;

pub use experiments::ExperimentContext;
pub use mechanisms::MechanismKind;
pub use report::{write_csv, TableWriter};
pub use runner::{run_cell, CellOutcome, CellSpec};
