//! Parameter grids — Table 1 of the paper, plus the scaled-down defaults
//! used when `--full` is not given.
//!
//! The paper's Table 1 (defaults in bold in the original; the bold marks
//! are not recoverable from the text, so DESIGN.md §4 fixes defaults that
//! sit inside every sweep):
//!
//! | param | values |
//! |---|---|
//! | γ | 1e-4, 1e-3, 1e-2, **1e-2**, 1e-1, 1, 10 |
//! | r | {0.8, 1.0, **1.2**, 1.4, 1.7, 2.1, 2.5, 3.0, 3.6} × rank(W) |
//! | n | 128, 256, **512**, 1024, 2048, 4096, 8192 |
//! | m | 64, 128, **256**, 512, 1024 |
//! | s | {0.1, **0.2**, 0.3, …, 1.0} × min(m, n) |

/// The three privacy budgets evaluated throughout the paper.
pub const EPSILONS: [f64; 3] = [1.0, 0.1, 0.01];

/// The single ε used in Figs. 4–9.
pub const EPSILON_MAIN: f64 = 0.1;

/// γ grid (Fig. 2).
pub const GAMMAS: [f64; 6] = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// r-ratio grid (Fig. 3).
pub const RANK_RATIOS: [f64; 9] = [0.8, 1.0, 1.2, 1.4, 1.7, 2.1, 2.5, 3.0, 3.6];

/// Domain-size grid (Figs. 4–6), full paper scale.
pub const DOMAIN_SIZES_FULL: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Domain-size grid, scaled-down default.
pub const DOMAIN_SIZES_QUICK: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Query-count grid (Figs. 7–8), full paper scale.
pub const QUERY_SIZES_FULL: [usize; 5] = [64, 128, 256, 512, 1024];

/// Query-count grid, scaled-down default.
pub const QUERY_SIZES_QUICK: [usize; 4] = [32, 64, 128, 256];

/// s-ratio grid (Fig. 9).
pub const S_RATIOS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Default γ (DESIGN.md §4).
pub const DEFAULT_GAMMA: f64 = 0.01;

/// Default r-ratio (Section 6.1 recommends rank(W)…1.2·rank(W)).
pub const DEFAULT_RANK_RATIO: f64 = 1.2;

/// Default domain size for the m/γ/r sweeps.
pub const DEFAULT_DOMAIN_FULL: usize = 1024;

/// Scaled-down default domain size.
pub const DEFAULT_DOMAIN_QUICK: usize = 256;

/// Default query count for the n/γ/r sweeps.
pub const DEFAULT_QUERIES_FULL: usize = 256;

/// Scaled-down default query count.
pub const DEFAULT_QUERIES_QUICK: usize = 64;

/// Default s-ratio for WRelated.
pub const DEFAULT_S_RATIO: f64 = 0.2;

/// Monte-Carlo trials per cell (the paper runs 20).
pub const DEFAULT_TRIALS: usize = 20;

/// Largest domain the Matrix Mechanism is attempted on by default: its
/// Appendix-B solver needs an `n×n` eigendecomposition per PSD projection,
/// which is the "enormous computational overhead" the paper criticizes.
pub const MM_DOMAIN_CAP_QUICK: usize = 512;

/// MM domain cap under `--full`.
pub const MM_DOMAIN_CAP_FULL: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sit_inside_grids() {
        assert!(GAMMAS.contains(&DEFAULT_GAMMA));
        assert!(RANK_RATIOS.contains(&DEFAULT_RANK_RATIO));
        assert!(DOMAIN_SIZES_FULL.contains(&DEFAULT_DOMAIN_FULL));
        assert!(DOMAIN_SIZES_QUICK.contains(&DEFAULT_DOMAIN_QUICK));
        assert!(QUERY_SIZES_FULL.contains(&DEFAULT_QUERIES_FULL));
        assert!(QUERY_SIZES_QUICK.contains(&DEFAULT_QUERIES_QUICK));
        assert!(S_RATIOS.contains(&DEFAULT_S_RATIO));
        assert!(EPSILONS.contains(&EPSILON_MAIN));
    }

    #[test]
    fn grids_are_sorted() {
        assert!(GAMMAS.windows(2).all(|w| w[0] < w[1]));
        assert!(RANK_RATIOS.windows(2).all(|w| w[0] < w[1]));
        assert!(DOMAIN_SIZES_FULL.windows(2).all(|w| w[0] < w[1]));
        assert!(QUERY_SIZES_FULL.windows(2).all(|w| w[0] < w[1]));
        assert!(S_RATIOS.windows(2).all(|w| w[0] < w[1]));
    }
}
