//! Cell execution: one (mechanism, workload, ε) measurement.
//!
//! All compilation goes through the [`Engine`] — the harness never calls a
//! per-mechanism constructor, so a cell that revisits an already-compiled
//! `(workload, kind, options)` triple is a cache hit.

use crate::mechanisms::MechanismKind;
use lrm_core::decomposition::DecompositionConfig;
use lrm_core::engine::{CompileOptions, CompiledMechanism, Engine};
use lrm_core::{CoreError, Mechanism};
use lrm_dp::rng::{derive_rng, stream_of};
use lrm_dp::Epsilon;
use lrm_workload::Workload;
use std::time::Instant;

/// Everything needed to measure one cell of a figure.
#[derive(Clone)]
pub struct CellSpec<'a> {
    /// Which mechanism to run.
    pub kind: MechanismKind,
    /// The workload under test.
    pub workload: &'a Workload,
    /// The database vector (merged to the workload's domain).
    pub data: &'a [f64],
    /// Privacy budget.
    pub epsilon: f64,
    /// LRM decomposition parameters (ignored by other mechanisms).
    pub lrm_config: DecompositionConfig,
    /// Monte-Carlo repetitions (the paper uses 20).
    pub trials: usize,
    /// Master seed; each trial derives an independent stream.
    pub seed: u64,
    /// Stream tag making cells independent (e.g. `"fig4/SearchLogs/n=512"`).
    pub tag: String,
}

/// Measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Mechanism display name.
    pub mechanism: &'static str,
    /// Closed-form expected squared error of the whole batch — the paper's
    /// "Average Squared Error" metric is this quantity averaged over runs.
    pub analytic_avg_error: f64,
    /// Monte-Carlo mean (over trials) of the batch squared error.
    pub empirical_avg_error: f64,
    /// Wall-clock seconds spent compiling the mechanism (for LRM this is
    /// the decomposition time the paper plots in Figs. 2–3).
    pub compile_seconds: f64,
    /// Wall-clock seconds per answered batch (mean over trials).
    pub answer_seconds: f64,
}

/// Compiles a mechanism through the engine and reports the wall-clock
/// time the call took (≈0 when served from the strategy cache).
pub fn compile_timed(
    engine: &Engine,
    kind: MechanismKind,
    workload: &Workload,
    lrm_config: &DecompositionConfig,
) -> Result<(CompiledMechanism, f64), CoreError> {
    let options = CompileOptions::with_decomposition(lrm_config.clone());
    let compiled = engine.compile(workload, kind, &options)?;
    let seconds = compiled.meta().compile_seconds;
    Ok((compiled, seconds))
}

/// Measures an already-compiled mechanism on one database: analytic error
/// plus `trials` Monte-Carlo answers.
pub fn measure(
    mechanism: &dyn Mechanism,
    workload: &Workload,
    data: &[f64],
    epsilon: f64,
    trials: usize,
    seed: u64,
    tag: &str,
) -> Result<(f64, f64, f64), CoreError> {
    let eps = Epsilon::new(epsilon)?;
    let truth = workload.answer(data)?;
    let analytic_avg_error = mechanism.expected_error(eps, Some(data));

    let mut total_sq = 0.0;
    let t1 = Instant::now();
    for trial in 0..trials {
        let mut rng = derive_rng(
            seed,
            stream_of(&format!("{tag}/{}/trial={trial}", mechanism.name())),
        );
        let noisy = mechanism.answer(data, eps, &mut rng)?;
        total_sq += noisy
            .iter()
            .zip(truth.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
    }
    let answer_seconds = if trials > 0 {
        t1.elapsed().as_secs_f64() / trials as f64
    } else {
        0.0
    };
    let empirical_avg_error = if trials > 0 {
        total_sq / trials as f64
    } else {
        f64::NAN
    };
    Ok((analytic_avg_error, empirical_avg_error, answer_seconds))
}

/// Runs one cell: compile (through the engine), analytic error, `trials`
/// Monte-Carlo answers.
pub fn run_cell(engine: &Engine, spec: &CellSpec<'_>) -> Result<CellOutcome, CoreError> {
    let (mechanism, compile_seconds) =
        compile_timed(engine, spec.kind, spec.workload, &spec.lrm_config)?;
    let (analytic_avg_error, empirical_avg_error, answer_seconds) = measure(
        &mechanism,
        spec.workload,
        spec.data,
        spec.epsilon,
        spec.trials,
        spec.seed,
        &spec.tag,
    )?;
    Ok(CellOutcome {
        mechanism: mechanism.meta().label,
        analytic_avg_error,
        empirical_avg_error,
        compile_seconds,
        answer_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::lrm_config;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn analytic_and_empirical_agree_for_lm() {
        let w = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let data: Vec<f64> = (0..16).map(|i| (i * 3 % 11) as f64).collect();
        let spec = CellSpec {
            kind: MechanismKind::Laplace,
            workload: &w,
            data: &data,
            epsilon: 1.0,
            lrm_config: lrm_config(0.01, 1.2),
            trials: 2000,
            seed: 99,
            tag: "test/lm".into(),
        };
        let out = run_cell(&Engine::default(), &spec).unwrap();
        let rel = (out.empirical_avg_error - out.analytic_avg_error).abs() / out.analytic_avg_error;
        assert!(rel < 0.1, "rel {rel}");
        assert_eq!(out.mechanism, "LM");
    }

    #[test]
    fn deterministic_across_runs() {
        let w = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let data = vec![1.0; 8];
        let spec = CellSpec {
            kind: MechanismKind::Wavelet,
            workload: &w,
            data: &data,
            epsilon: 0.5,
            lrm_config: lrm_config(0.01, 1.2),
            trials: 5,
            seed: 7,
            tag: "test/det".into(),
        };
        // The second run is served from the strategy cache; results must
        // still be bit-identical.
        let engine = Engine::default();
        let a = run_cell(&engine, &spec).unwrap();
        let b = run_cell(&engine, &spec).unwrap();
        assert_eq!(a.empirical_avg_error, b.empirical_avg_error);
    }

    #[test]
    fn zero_trials_yields_nan_empirical() {
        let w = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let data = vec![1.0; 8];
        let spec = CellSpec {
            kind: MechanismKind::Hierarchical,
            workload: &w,
            data: &data,
            epsilon: 0.5,
            lrm_config: lrm_config(0.01, 1.2),
            trials: 0,
            seed: 7,
            tag: "test/zero".into(),
        };
        let out = run_cell(&Engine::default(), &spec).unwrap();
        assert!(out.empirical_avg_error.is_nan());
        assert!(out.analytic_avg_error > 0.0);
    }
}
