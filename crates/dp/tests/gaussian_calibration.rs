//! Property audit of the analytic Gaussian calibration (ISSUE 8
//! satellite).
//!
//! [`Gaussian::calibrated`] inverts the exact privacy profile
//! `δ(ε, σ)` by bisection; these properties check, across the whole
//! parameter grid the server can reach, that the returned σ (a) truly
//! satisfies the (ε, δ) bound per the profile, (b) is tight — noticeably
//! less noise violates the bound — and (c) respects the classic
//! `√(2 ln(1.25/δ))` theorem where that theorem applies (ε ≤ 1), so the
//! profile itself is cross-checked against independent textbook math,
//! not just against its own inverse.

use lrm_dp::{gaussian_profile_delta, Budget, Epsilon, Gaussian};
use proptest::prelude::*;

fn budget(eps: f64, delta: f64) -> Budget {
    Budget::approx(Epsilon::new(eps).unwrap(), delta).unwrap()
}

proptest! {
    /// The calibrated σ satisfies its own (ε, δ) target with at most
    /// bisection-resolution slack, for any (ε, δ, Δ₂) the server admits.
    #[test]
    fn calibration_satisfies_the_profile(
        eps in 0.01f64..12.0,
        // Log-uniform δ across ten decades.
        log_delta in -12.0f64..-1.0,
        sens in 0.05f64..20.0,
    ) {
        let delta = 10f64.powf(log_delta);
        let g = Gaussian::calibrated(sens, budget(eps, delta)).unwrap();
        let achieved = gaussian_profile_delta(sens, eps, g.sigma());
        prop_assert!(
            achieved <= delta * (1.0 + 1e-9),
            "σ={} achieves δ={achieved:e} > target {delta:e} (ε={eps}, Δ₂={sens})",
            g.sigma()
        );
    }

    /// The calibration is tight: 2% less noise breaks the bound. (If this
    /// fails, the bisection is returning a wastefully large σ and every
    /// Gaussian release is noisier than advertised.)
    #[test]
    fn calibration_is_tight(
        eps in 0.01f64..12.0,
        log_delta in -12.0f64..-1.0,
        sens in 0.05f64..20.0,
    ) {
        let delta = 10f64.powf(log_delta);
        let g = Gaussian::calibrated(sens, budget(eps, delta)).unwrap();
        let under = gaussian_profile_delta(sens, eps, g.sigma() * 0.98);
        prop_assert!(
            under > delta,
            "σ={} is not tight: 0.98σ still satisfies δ ({under:e} ≤ {delta:e})",
            g.sigma()
        );
    }

    /// Where the classic Gaussian-mechanism theorem applies (ε ≤ 1), its
    /// σ must satisfy the profile and the analytic σ must be no larger —
    /// an external consistency anchor for both the profile and the
    /// calibration.
    #[test]
    fn analytic_beats_classic_where_classic_is_valid(
        eps in 0.05f64..1.0,
        log_delta in -10.0f64..-2.0,
        sens in 0.1f64..10.0,
    ) {
        let delta = 10f64.powf(log_delta);
        let classic = sens * (2.0 * (1.25 / delta).ln()).sqrt() / eps;
        prop_assert!(
            gaussian_profile_delta(sens, eps, classic) <= delta,
            "classic σ={classic} violates the profile at ε={eps}, δ={delta:e}"
        );
        let g = Gaussian::calibrated(sens, budget(eps, delta)).unwrap();
        prop_assert!(
            g.sigma() <= classic * (1.0 + 1e-9),
            "analytic σ={} exceeds classic {classic}",
            g.sigma()
        );
    }
}
