//! Property tests for WAL corruption recovery (ISSUE 7 satellite).
//!
//! The durable ledger's contract is *conservative recovery*: whatever
//! happens to the journal file — torn final write, arbitrary
//! truncation, a bit flip anywhere — replay must never credit a tenant
//! with less spend than the ε whose noisy answers actually escaped the
//! process. These tests drive random intent/settle/abort histories
//! through [`DurableLedger`], mutilate the journal bytes, reopen, and
//! check the spend floor from ground truth tracked outside the ledger.
//!
//! Frame-size bookkeeping: a freshly opened journal is compacted to
//! `header(8) · Grant(13) · Snapshot(21)`; each op then appends
//! `Intent(21)` and, for settled/aborted ops, `Settle(13)`/`Abort(13)`.

use lrm_dp::{DurableLedger, Epsilon};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const HEADER: usize = 8;
const GRANT: usize = 13;
const SNAPSHOT: usize = 21;
const INTENT: usize = 21;
const SETTLE: usize = 13;
const ABORT: usize = 13;

/// A generous total so random histories never hit admission control.
const TOTAL: f64 = 1000.0;
const SLACK: f64 = 1e-9 * TOTAL;

#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKind {
    /// begin + settle: the release escaped the process.
    Settled,
    /// begin + abort: refunded, nothing escaped.
    Aborted,
    /// begin only: crash before resolution.
    Pending,
}

struct Op {
    kind: OpKind,
    eps: f64,
    /// Byte offset one past this op's frames in the journal file.
    end: usize,
}

fn unique_path(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "lrm_journal_prop_{name}_{}_{}.epsj",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Applies `raw` ops to a fresh durable ledger at `path`, returning the
/// op log with byte offsets.
fn build_history(path: &PathBuf, raw: &[(u8, f64)]) -> Vec<Op> {
    let _ = std::fs::remove_file(path);
    let (ledger, _) = DurableLedger::open(path, Epsilon::new(TOTAL).unwrap()).unwrap();
    let mut offset = HEADER + GRANT + SNAPSHOT;
    let mut ops = Vec::with_capacity(raw.len());
    for &(k, eps) in raw {
        let kind = match k % 3 {
            0 => OpKind::Settled,
            1 => OpKind::Aborted,
            _ => OpKind::Pending,
        };
        let id = ledger.begin(Epsilon::new(eps).unwrap()).unwrap();
        offset += INTENT;
        match kind {
            OpKind::Settled => {
                ledger.settle(id);
                offset += SETTLE;
            }
            OpKind::Aborted => {
                ledger.abort(id);
                offset += ABORT;
            }
            OpKind::Pending => {}
        }
        ops.push(Op {
            kind,
            eps,
            end: offset,
        });
    }
    assert_eq!(
        std::fs::metadata(path).unwrap().len() as usize,
        offset,
        "frame-size bookkeeping drifted from the real journal layout"
    );
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No corruption: a reopen recovers settled spend exactly, plus
    /// every pending intent folded in as spent.
    #[test]
    fn clean_reopen_recovers_exact_conservative_spend(
        raw in proptest::collection::vec((0u8..3, 0.01f64..1.0), 1..12),
    ) {
        let path = unique_path("clean");
        let ops = build_history(&path, &raw);
        let settled: f64 = ops.iter().filter(|o| o.kind == OpKind::Settled).map(|o| o.eps).sum();
        let pending: f64 = ops.iter().filter(|o| o.kind == OpKind::Pending).map(|o| o.eps).sum();

        let (ledger, summary) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(summary.resumed && !summary.corrupted);
        prop_assert!((ledger.spent() - (settled + pending)).abs() < SLACK,
            "spent {} vs settled {settled} + pending {pending}", ledger.spent());
        let _ = std::fs::remove_file(&path);
    }

    /// A torn final write (1..frame-length bytes lost) never refunds a
    /// released debit: recovered spend covers every settled op.
    #[test]
    fn torn_tail_never_refunds_released_eps(
        raw in proptest::collection::vec((0u8..3, 0.01f64..1.0), 1..12),
        tear in 0.0f64..1.0,
    ) {
        let path = unique_path("torn");
        let ops = build_history(&path, &raw);
        let released: f64 = ops.iter().filter(|o| o.kind == OpKind::Settled).map(|o| o.eps).sum();

        // Tear within the final frame only — the crash model (an append
        // is fsync'd before its operation takes effect).
        let last = ops.last().unwrap();
        let last_frame = if last.kind == OpKind::Pending { INTENT } else { SETTLE };
        let cut = 1 + (tear * (last_frame - 1) as f64) as usize; // 1..=frame-1 bytes
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(len - cut.min(last_frame - 1));
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, summary) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(!summary.corrupted, "a torn tail is recoverable, not fatal");
        prop_assert!(ledger.spent() + SLACK >= released,
            "torn tail refunded released ε: spent {} < released {released}", ledger.spent());
        let _ = std::fs::remove_file(&path);
    }

    /// Arbitrary truncation (any number of frames lost): the recovered
    /// spend covers every (intent, settle) pair fully inside the
    /// surviving prefix, and never exceeds the total.
    #[test]
    fn truncation_resolves_conservatively(
        raw in proptest::collection::vec((0u8..3, 0.01f64..1.0), 1..12),
        frac in 0.0f64..1.0,
    ) {
        let path = unique_path("trunc");
        let ops = build_history(&path, &raw);
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let keep = (frac * len as f64) as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(keep);
        std::fs::write(&path, &bytes).unwrap();

        let durable_released: f64 = ops
            .iter()
            .filter(|o| o.kind == OpKind::Settled && o.end <= keep)
            .map(|o| o.eps)
            .sum();

        let (ledger, _) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(ledger.spent() <= TOTAL);
        prop_assert!(ledger.spent() + SLACK >= durable_released,
            "truncation to {keep}/{len} refunded surviving releases: spent {} < {durable_released}",
            ledger.spent());
        let _ = std::fs::remove_file(&path);
    }

    /// Spend carried in a *compaction snapshot* (a reopen rewrites the
    /// journal as header · Grant · Snapshot) survives small tears: the
    /// snapshot is not a live append, so damage to it must exhaust the
    /// ledger, never refund the history it summarizes. This is the
    /// cross-restart case the chaos harness runs end to end.
    #[test]
    fn snapshot_damage_never_refunds_compacted_spend(
        raw in proptest::collection::vec((0u8..3, 0.01f64..1.0), 1..12),
        cut in 1usize..=3,
    ) {
        let path = unique_path("snap");
        let ops = build_history(&path, &raw);
        let released: f64 = ops.iter().filter(|o| o.kind == OpKind::Settled).map(|o| o.eps).sum();

        // Reopen: history is folded into the compacted snapshot.
        let (_ledger, summary) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(summary.resumed && !summary.corrupted);
        prop_assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            HEADER + GRANT + SNAPSHOT
        );
        // Tear 1–3 bytes off the snapshot frame.
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(len - cut);
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, summary) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(summary.corrupted, "a damaged snapshot must read as corruption");
        prop_assert!(ledger.spent() + SLACK >= released,
            "snapshot tear refunded released ε: spent {} < {released}", ledger.spent());
        prop_assert!(ledger.is_exhausted());
        let _ = std::fs::remove_file(&path);
    }

    /// A single bit flip anywhere in the file is always detected (CRC32
    /// catches all 1-bit errors) and resolves to a spend at or above
    /// everything released — by dropping only the final frame, or by
    /// exhausting the ledger outright.
    #[test]
    fn bit_flip_is_detected_and_conservative(
        raw in proptest::collection::vec((0u8..3, 0.01f64..1.0), 1..12),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = unique_path("flip");
        let ops = build_history(&path, &raw);
        let released: f64 = ops.iter().filter(|o| o.kind == OpKind::Settled).map(|o| o.eps).sum();

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, _) = DurableLedger::open(&path, Epsilon::new(TOTAL).unwrap()).unwrap();
        prop_assert!(ledger.spent() + SLACK >= released,
            "bit flip at byte {pos} bit {bit} refunded released ε: spent {} < {released}",
            ledger.spent());
        prop_assert!(ledger.spent() <= TOTAL);
        let _ = std::fs::remove_file(&path);
    }
}
