//! Concurrency audit for the budget ledger (ISSUE 5 satellite).
//!
//! The sequential [`BudgetLedger`] documents a lifetime over-spend bound of
//! one rounding slack (`total × 1e-9`); these tests prove the
//! [`SharedLedger`] layer preserves that bound when many threads debit one
//! tenant concurrently. There is no loom in this offline workspace, so the
//! tests shake interleavings the pedestrian way: many threads, many
//! iterations, mixed debit sizes, and yields between attempts — and they
//! assert on the *granted* amounts each thread actually observed, not on
//! the ledger's (clamped) internal counter, so a lost-update bug cannot
//! hide behind the clamp.

use lrm_dp::concurrent::SharedLedger;
use lrm_dp::{BudgetError, Epsilon};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The ledger's documented lifetime over-spend bound.
const RELATIVE_SLACK: f64 = 1e-9;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Hammers one shared ledger from `threads` threads, each attempting every
/// debit in `sizes` repeatedly (`rounds` passes), and returns the ε each
/// thread was actually granted.
fn hammer(total: f64, threads: usize, rounds: usize, sizes: &[f64]) -> Vec<f64> {
    let ledger = SharedLedger::new(eps(total));
    let started = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ledger = ledger.clone();
                let started = &started;
                s.spawn(move || {
                    // Barrier-ish start so the threads actually contend.
                    started.fetch_add(1, Ordering::SeqCst);
                    while started.load(Ordering::SeqCst) < threads {
                        std::hint::spin_loop();
                    }
                    let mut granted = 0.0;
                    for round in 0..rounds {
                        for i in 0..sizes.len() {
                            // Stagger the order per thread so different
                            // sizes collide at the boundary.
                            let size = sizes[(i + t + round) % sizes.len()];
                            match ledger.debit(eps(size)) {
                                Ok(_) => granted += size,
                                Err(BudgetError::Exhausted { .. }) => {}
                                Err(e) => panic!("pure ε debit failed oddly: {e:?}"),
                            }
                            if (i + t) % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                    granted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn concurrent_debits_never_exceed_one_slack() {
    let total = 1.0;
    let granted = hammer(total, 16, 50, &[0.01, 0.003, 0.0007]);
    let granted_sum: f64 = granted.iter().sum();
    // The bound under test: everything actually granted, summed across all
    // threads, stays within the documented one-slack envelope.
    assert!(
        granted_sum <= total * (1.0 + RELATIVE_SLACK) + 1e-12,
        "over-spend: granted {granted_sum} > total {total} + slack"
    );
    // The run must have actually driven the ledger to the boundary — the
    // leftover must be too small for even the smallest debit — or the test
    // proved nothing about contention at exhaustion.
    assert!(
        granted_sum >= total - 0.0007,
        "ledger never reached exhaustion (granted {granted_sum}); the boundary was not exercised"
    );
}

#[test]
fn dust_debits_stay_blocked_under_contention() {
    // Exhaust, then have many threads fling sub-slack dust at the ledger:
    // not one grain may leak through (the sequential ledger's dust guard
    // must hold behind the shared lock too).
    let ledger = SharedLedger::new(eps(1.0));
    ledger.debit(eps(1.0)).unwrap();
    let leaked: usize = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let ledger = ledger.clone();
                s.spawn(move || {
                    (0..1000)
                        .filter(|_| ledger.debit(eps(1e-12)).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(leaked, 0, "{leaked} dust debits leaked through exhaustion");
    assert_eq!(ledger.debits(), 1);
}

#[test]
fn successful_debit_count_matches_ledger() {
    // The debit counter is part of the audit trail: it must agree with the
    // number of grants the callers observed.
    let ledger = SharedLedger::new(eps(1.0));
    let grants: usize = std::thread::scope(|s| {
        (0..12)
            .map(|_| {
                let ledger = ledger.clone();
                s.spawn(move || {
                    (0..100)
                        .filter(|_| ledger.debit(eps(0.004)).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(ledger.debits(), grants);
    // 250 × 0.004 = 1.0 exactly fills the budget.
    assert_eq!(grants, 250);
    assert!(ledger.is_exhausted());
}

proptest! {
    /// Property form of the audit: for arbitrary totals and debit-size
    /// menus, the contended grant total stays within one slack of the
    /// advertised budget.
    #[test]
    fn over_spend_bound_holds_for_arbitrary_sizes(
        total in 0.05f64..4.0,
        sizes in proptest::collection::vec(1e-4f64..0.2, 1..4),
        threads in 2usize..9,
    ) {
        let scaled: Vec<f64> = sizes.iter().map(|s| s * total).collect();
        let rounds = 1 + (2.0 / (scaled.iter().sum::<f64>() * threads as f64)).ceil() as usize;
        let granted: f64 = hammer(total, threads, rounds.min(50), &scaled).iter().sum();
        prop_assert!(
            granted <= total * (1.0 + RELATIVE_SLACK) + 1e-12,
            "granted {} vs total {}", granted, total
        );
    }
}
