//! Concurrency audit for the budget ledger (ISSUE 5 satellite; extended
//! for the ISSUE 9 lock-free fast path).
//!
//! The sequential [`BudgetLedger`] documents a lifetime over-spend bound of
//! one rounding slack (`total × 1e-9`); these tests prove the
//! [`SharedLedger`] layer preserves that bound when many threads debit one
//! tenant concurrently — including through the atomic (CAS) reserve path
//! and the two-phase reserve-then-settle protocol, in *both* the ε and δ
//! columns. There is no loom in this offline workspace, so the
//! tests shake interleavings the pedestrian way: many threads, many
//! iterations, mixed debit sizes, and yields between attempts — and they
//! assert on the *granted* amounts each thread actually observed, not on
//! the ledger's (clamped) internal counter, so a lost-update bug cannot
//! hide behind the clamp.

use lrm_dp::concurrent::SharedLedger;
use lrm_dp::{Budget, BudgetError, Epsilon};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The ledger's documented lifetime over-spend bound.
const RELATIVE_SLACK: f64 = 1e-9;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Hammers one shared ledger from `threads` threads, each attempting every
/// debit in `sizes` repeatedly (`rounds` passes), and returns the ε each
/// thread was actually granted.
fn hammer(total: f64, threads: usize, rounds: usize, sizes: &[f64]) -> Vec<f64> {
    let ledger = SharedLedger::new(eps(total));
    let started = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ledger = ledger.clone();
                let started = &started;
                s.spawn(move || {
                    // Barrier-ish start so the threads actually contend.
                    started.fetch_add(1, Ordering::SeqCst);
                    while started.load(Ordering::SeqCst) < threads {
                        std::hint::spin_loop();
                    }
                    let mut granted = 0.0;
                    for round in 0..rounds {
                        for i in 0..sizes.len() {
                            // Stagger the order per thread so different
                            // sizes collide at the boundary.
                            let size = sizes[(i + t + round) % sizes.len()];
                            match ledger.debit(eps(size)) {
                                Ok(_) => granted += size,
                                Err(BudgetError::Exhausted { .. }) => {}
                                Err(e) => panic!("pure ε debit failed oddly: {e:?}"),
                            }
                            if (i + t) % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                    granted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn concurrent_debits_never_exceed_one_slack() {
    let total = 1.0;
    let granted = hammer(total, 16, 50, &[0.01, 0.003, 0.0007]);
    let granted_sum: f64 = granted.iter().sum();
    // The bound under test: everything actually granted, summed across all
    // threads, stays within the documented one-slack envelope.
    assert!(
        granted_sum <= total * (1.0 + RELATIVE_SLACK) + 1e-12,
        "over-spend: granted {granted_sum} > total {total} + slack"
    );
    // The run must have actually driven the ledger to the boundary — the
    // leftover must be too small for even the smallest debit — or the test
    // proved nothing about contention at exhaustion.
    assert!(
        granted_sum >= total - 0.0007,
        "ledger never reached exhaustion (granted {granted_sum}); the boundary was not exercised"
    );
}

#[test]
fn dust_debits_stay_blocked_under_contention() {
    // Exhaust, then have many threads fling sub-slack dust at the ledger:
    // not one grain may leak through (the sequential ledger's dust guard
    // must hold behind the shared lock too).
    let ledger = SharedLedger::new(eps(1.0));
    ledger.debit(eps(1.0)).unwrap();
    let leaked: usize = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let ledger = ledger.clone();
                s.spawn(move || {
                    (0..1000)
                        .filter(|_| ledger.debit(eps(1e-12)).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(leaked, 0, "{leaked} dust debits leaked through exhaustion");
    assert_eq!(ledger.debits(), 1);
}

#[test]
fn successful_debit_count_matches_ledger() {
    // The debit counter is part of the audit trail: it must agree with the
    // number of grants the callers observed.
    let ledger = SharedLedger::new(eps(1.0));
    let grants: usize = std::thread::scope(|s| {
        (0..12)
            .map(|_| {
                let ledger = ledger.clone();
                s.spawn(move || {
                    (0..100)
                        .filter(|_| ledger.debit(eps(0.004)).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(ledger.debits(), grants);
    // 250 × 0.004 = 1.0 exactly fills the budget.
    assert_eq!(grants, 250);
    assert!(ledger.is_exhausted());
}

fn budget(e: f64, d: f64) -> Budget {
    Budget::new(eps(e), d).unwrap()
}

/// Hammers one (ε, δ) ledger through the two-phase atomic reserve path:
/// every thread runs `begin_budget` → settle (or abort every
/// `abort_every`-th successful reservation), and returns the (ε, δ) each
/// thread actually *settled* — aborted reservations grant nothing and
/// must refund both columns exactly.
fn hammer_budget(
    total: (f64, f64),
    threads: usize,
    rounds: usize,
    sizes: &[(f64, f64)],
    abort_every: usize,
) -> (SharedLedger, Vec<(f64, f64)>) {
    let ledger = SharedLedger::with_budget(budget(total.0, total.1));
    let started = AtomicUsize::new(0);
    let granted = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ledger = ledger.clone();
                let started = &started;
                s.spawn(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    while started.load(Ordering::SeqCst) < threads {
                        std::hint::spin_loop();
                    }
                    let (mut got_eps, mut got_delta) = (0.0, 0.0);
                    let mut reservations = 0usize;
                    for round in 0..rounds {
                        for i in 0..sizes.len() {
                            let (e, d) = sizes[(i + t + round) % sizes.len()];
                            match ledger.begin_budget(budget(e, d)) {
                                Ok(id) => {
                                    reservations += 1;
                                    if reservations.is_multiple_of(abort_every) {
                                        ledger.abort(id);
                                    } else {
                                        ledger.settle(id);
                                        got_eps += e;
                                        got_delta += d;
                                    }
                                }
                                Err(
                                    BudgetError::Exhausted { .. }
                                    | BudgetError::DeltaExhausted { .. },
                                ) => {}
                            }
                            if (i + t) % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                    (got_eps, got_delta)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (ledger, granted)
}

#[test]
fn atomic_reserve_bounds_both_columns_under_contention() {
    let (total_eps, total_delta) = (1.0, 1e-5);
    let sizes = [(0.01, 1.1e-7), (0.003, 2.9e-8), (0.0007, 8e-9)];
    let (ledger, granted) = hammer_budget((total_eps, total_delta), 16, 60, &sizes, 7);
    let eps_sum: f64 = granted.iter().map(|g| g.0).sum();
    let delta_sum: f64 = granted.iter().map(|g| g.1).sum();
    assert!(
        eps_sum <= total_eps * (1.0 + RELATIVE_SLACK) + 1e-12,
        "ε over-spend: settled {eps_sum} > total {total_eps} + slack"
    );
    assert!(
        delta_sum <= total_delta * (1.0 + RELATIVE_SLACK) + 1e-18,
        "δ over-spend: settled {delta_sum} > total {total_delta} + slack"
    );
    // One of the columns must have been driven to its boundary — the
    // leftover too small for even the smallest request — or the race at
    // exhaustion was never exercised.
    assert!(
        ledger.remaining() < 0.0007 || ledger.delta_remaining() < 8e-9,
        "neither column reached its boundary (ε {eps_sum}, δ {delta_sum})"
    );
    // Everything reserved was either settled or refunded: no intent may
    // stay pending once the threads are done.
    assert_eq!(ledger.pending(), 0);
    assert!(ledger.debits() > 0);
}

#[test]
fn aborted_reservations_refund_exactly() {
    // Reserve-then-abort in a tight contended loop must leave the ledger
    // exactly where it started: the refund subtracts the post-clamp
    // applied amounts, not the requested ones.
    let ledger = SharedLedger::with_budget(budget(1.0, 1e-6));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let ledger = ledger.clone();
            s.spawn(move || {
                for _ in 0..500 {
                    if let Ok(id) = ledger.begin_budget(budget(0.01, 3e-9)) {
                        ledger.abort(id);
                    }
                }
            });
        }
    });
    assert!(ledger.spent().abs() < 1e-12, "ε leaked: {}", ledger.spent());
    assert!(
        ledger.delta_spent().abs() < 1e-18,
        "δ leaked: {}",
        ledger.delta_spent()
    );
    assert_eq!(ledger.debits(), 0);
    assert_eq!(ledger.pending(), 0);
    // The refunded budget is fully grantable again.
    ledger.debit_budget(budget(1.0, 1e-6)).unwrap();
}

#[test]
fn delta_dust_stays_blocked_under_contention() {
    // Exhaust the δ column, then fling sub-slack δ dust from many
    // threads: the δ dust guard must hold on the atomic path even while
    // the ε column still has room.
    let ledger = SharedLedger::with_budget(budget(10.0, 1e-6));
    ledger.debit_budget(budget(0.1, 1e-6)).unwrap();
    assert!(ledger.is_delta_exhausted());
    let leaked: usize = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let ledger = ledger.clone();
                s.spawn(move || {
                    (0..1000)
                        .filter(|_| ledger.debit_budget(budget(1e-4, 1e-18)).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(
        leaked, 0,
        "{leaked} δ dust debits leaked through exhaustion"
    );
    // A δ refusal must not have bled the ε column either.
    assert!((ledger.spent() - 0.1).abs() < 1e-12);
    assert_eq!(ledger.debits(), 1);
}

proptest! {
    /// Property form of the audit: for arbitrary totals and debit-size
    /// menus, the contended grant total stays within one slack of the
    /// advertised budget.
    #[test]
    fn over_spend_bound_holds_for_arbitrary_sizes(
        total in 0.05f64..4.0,
        sizes in proptest::collection::vec(1e-4f64..0.2, 1..4),
        threads in 2usize..9,
    ) {
        let scaled: Vec<f64> = sizes.iter().map(|s| s * total).collect();
        let rounds = 1 + (2.0 / (scaled.iter().sum::<f64>() * threads as f64)).ceil() as usize;
        let granted: f64 = hammer(total, threads, rounds.min(50), &scaled).iter().sum();
        prop_assert!(
            granted <= total * (1.0 + RELATIVE_SLACK) + 1e-12,
            "granted {} vs total {}", granted, total
        );
    }

    /// The same property through the two-phase atomic reserve path, over
    /// both columns at once, with a deterministic sprinkling of aborts:
    /// settled ε and settled δ each stay within one slack of their
    /// advertised totals, for arbitrary budget menus.
    #[test]
    fn atomic_reserve_bound_holds_for_arbitrary_budgets(
        total_eps in 0.05f64..4.0,
        total_delta in 1e-7f64..1e-4,
        sizes in proptest::collection::vec((1e-3f64..0.3, 1e-3f64..0.3), 1..4),
        threads in 2usize..7,
        abort_every in 3usize..12,
    ) {
        let scaled: Vec<(f64, f64)> = sizes
            .iter()
            .map(|(e, d)| (e * total_eps, d * total_delta))
            .collect();
        let per_round: f64 = scaled.iter().map(|s| s.0).sum::<f64>() * threads as f64;
        let rounds = 1 + (2.0 / per_round).ceil() as usize;
        let (ledger, granted) =
            hammer_budget((total_eps, total_delta), threads, rounds.min(40), &scaled, abort_every);
        let eps_sum: f64 = granted.iter().map(|g| g.0).sum();
        let delta_sum: f64 = granted.iter().map(|g| g.1).sum();
        prop_assert!(
            eps_sum <= total_eps * (1.0 + RELATIVE_SLACK) + 1e-12,
            "settled ε {} vs total {}", eps_sum, total_eps
        );
        prop_assert!(
            delta_sum <= total_delta * (1.0 + RELATIVE_SLACK) + 1e-15,
            "settled δ {} vs total {}", delta_sum, total_delta
        );
        prop_assert_eq!(ledger.pending(), 0);
    }
}
