//! Typed errors for the differential-privacy primitives.

use std::fmt;

/// Errors raised by the DP primitive constructors in this crate.
///
/// Every variant carries the offending value so callers can report exactly
/// what was rejected without re-deriving it from a message string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpError {
    /// A privacy budget that is not strictly positive and finite.
    NonPositiveEpsilon(f64),
    /// A budget split into zero parts.
    EmptySplit,
    /// A budget fraction outside `(0, 1]`.
    FractionOutOfRange(f64),
    /// A noise scale (Laplace `s` or Gaussian `σ`) that is not strictly
    /// positive and finite.
    NonPositiveScale(f64),
    /// A noise location that is not finite.
    NonFiniteLocation(f64),
    /// An approximate-DP δ outside `[0, 1)` (or outside `(0, 1)` where a
    /// strictly positive δ is required).
    DeltaOutOfRange(f64),
    /// A sensitivity that is not strictly positive and finite, where a
    /// noise calibration requires one.
    NonPositiveSensitivity(f64),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::NonPositiveEpsilon(v) => {
                write!(f, "privacy budget must be positive and finite, got {v}")
            }
            DpError::EmptySplit => write!(f, "cannot split a budget into zero parts"),
            DpError::FractionOutOfRange(v) => {
                write!(f, "fraction must be in (0, 1], got {v}")
            }
            DpError::NonPositiveScale(v) => {
                write!(f, "noise scale must be positive and finite, got {v}")
            }
            DpError::NonFiniteLocation(v) => {
                write!(f, "noise location must be finite, got {v}")
            }
            DpError::DeltaOutOfRange(v) => {
                write!(f, "approximate-DP δ must lie in [0, 1), got {v}")
            }
            DpError::NonPositiveSensitivity(v) => {
                write!(f, "sensitivity must be positive and finite, got {v}")
            }
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_value() {
        assert!(DpError::NonPositiveEpsilon(-2.0).to_string().contains("-2"));
        assert!(DpError::FractionOutOfRange(1.5).to_string().contains("1.5"));
        assert!(DpError::NonPositiveScale(0.0).to_string().contains('0'));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(DpError::EmptySplit);
        assert!(e.source().is_none());
    }
}
