//! Privacy budget type.

use crate::error::DpError;
use std::fmt;

/// An ε-differential-privacy budget: strictly positive and finite.
///
/// The paper evaluates ε ∈ {1, 0.1, 0.01} and notes that the squared error
/// of every mechanism is quadratic in `1/ε` (Section 6), which the harness
/// verifies empirically.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a budget; rejects non-positive, NaN, or infinite values.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(DpError::NonPositiveEpsilon(value))
        }
    }

    /// The raw ε value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Splits the budget into `k` equal parts (sequential composition):
    /// running `k` mechanisms each with `ε/k` satisfies ε-DP overall.
    ///
    /// The Hierarchical Mechanism uses this to give each tree level an
    /// equal share.
    pub fn split(&self, k: usize) -> Result<Self, DpError> {
        if k == 0 {
            return Err(DpError::EmptySplit);
        }
        Self::new(self.0 / k as f64)
    }

    /// Consumes a fraction of the budget (0 < fraction ≤ 1).
    pub fn fraction(&self, fraction: f64) -> Result<Self, DpError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(DpError::FractionOutOfRange(fraction));
        }
        Self::new(self.0 * fraction)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_budgets() {
        for &e in &[1.0, 0.1, 0.01, 1e-9, 100.0] {
            assert_eq!(Epsilon::new(e).unwrap().value(), e);
        }
    }

    #[test]
    fn rejects_invalid_budgets() {
        for &e in &[0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Epsilon::new(e).is_err(), "accepted {e}");
        }
    }

    #[test]
    fn split_composes() {
        let eps = Epsilon::new(1.0).unwrap();
        let part = eps.split(4).unwrap();
        assert!((part.value() - 0.25).abs() < 1e-15);
        assert!(eps.split(0).is_err());
    }

    #[test]
    fn fraction_bounds() {
        let eps = Epsilon::new(2.0).unwrap();
        assert!((eps.fraction(0.5).unwrap().value() - 1.0).abs() < 1e-15);
        assert!(eps.fraction(0.0).is_err());
        assert!(eps.fraction(1.5).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Epsilon::new(0.1).unwrap().to_string(), "ε=0.1");
    }
}
