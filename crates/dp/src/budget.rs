//! Privacy budget type.

use crate::error::DpError;
use std::fmt;

/// An ε-differential-privacy budget: strictly positive and finite.
///
/// The paper evaluates ε ∈ {1, 0.1, 0.01} and notes that the squared error
/// of every mechanism is quadratic in `1/ε` (Section 6), which the harness
/// verifies empirically.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a budget; rejects non-positive, NaN, or infinite values.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(DpError::NonPositiveEpsilon(value))
        }
    }

    /// The raw ε value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Splits the budget into `k` equal parts (sequential composition):
    /// running `k` mechanisms each with `ε/k` satisfies ε-DP overall.
    ///
    /// The Hierarchical Mechanism uses this to give each tree level an
    /// equal share.
    pub fn split(&self, k: usize) -> Result<Self, DpError> {
        if k == 0 {
            return Err(DpError::EmptySplit);
        }
        Self::new(self.0 / k as f64)
    }

    /// Consumes a fraction of the budget (0 < fraction ≤ 1).
    pub fn fraction(&self, fraction: f64) -> Result<Self, DpError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(DpError::FractionOutOfRange(fraction));
        }
        Self::new(self.0 * fraction)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// An (ε, δ)-differential-privacy budget: the approximate-DP counterpart
/// of [`Epsilon`].
///
/// `δ = 0` recovers pure ε-DP (the [`Budget::pure`] constructor); `δ > 0`
/// is the regime of the journal extension of the paper, where the
/// Gaussian mechanism calibrated against **L2** sensitivity replaces
/// Laplace-against-L1. δ is a probability of unbounded privacy loss and
/// must be well below `1/n` for a database of `n` users; the constructor
/// only enforces `0 ≤ δ < 1` and leaves the deployment policy to callers.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Budget {
    eps: Epsilon,
    delta: f64,
}

impl Budget {
    /// Creates an (ε, δ) budget; δ must be finite and in `[0, 1)`.
    pub fn new(eps: Epsilon, delta: f64) -> Result<Self, DpError> {
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(DpError::DeltaOutOfRange(delta));
        }
        Ok(Self { eps, delta })
    }

    /// A pure ε-DP budget (`δ = 0`).
    pub fn pure(eps: Epsilon) -> Self {
        Self { eps, delta: 0.0 }
    }

    /// An approximate-DP budget; δ must be finite and in `(0, 1)`.
    pub fn approx(eps: Epsilon, delta: f64) -> Result<Self, DpError> {
        if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err(DpError::DeltaOutOfRange(delta));
        }
        Ok(Self { eps, delta })
    }

    /// The ε component.
    #[inline]
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The δ component (`0` for pure ε-DP).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether this is a pure ε-DP budget (`δ = 0`).
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Replaces the ε component, keeping δ — how the server prices one
    /// member of a cross-ε batch at its own ε within a shared δ-class.
    pub fn with_eps(&self, eps: Epsilon) -> Self {
        Self {
            eps,
            delta: self.delta,
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "({}, δ=0)", self.eps)
        } else {
            write!(f, "({}, δ={:e})", self.eps, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_budgets() {
        for &e in &[1.0, 0.1, 0.01, 1e-9, 100.0] {
            assert_eq!(Epsilon::new(e).unwrap().value(), e);
        }
    }

    #[test]
    fn rejects_invalid_budgets() {
        for &e in &[0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Epsilon::new(e).is_err(), "accepted {e}");
        }
    }

    #[test]
    fn split_composes() {
        let eps = Epsilon::new(1.0).unwrap();
        let part = eps.split(4).unwrap();
        assert!((part.value() - 0.25).abs() < 1e-15);
        assert!(eps.split(0).is_err());
    }

    #[test]
    fn fraction_bounds() {
        let eps = Epsilon::new(2.0).unwrap();
        assert!((eps.fraction(0.5).unwrap().value() - 1.0).abs() < 1e-15);
        assert!(eps.fraction(0.0).is_err());
        assert!(eps.fraction(1.5).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Epsilon::new(0.1).unwrap().to_string(), "ε=0.1");
    }

    #[test]
    fn budget_accepts_valid_deltas() {
        let eps = Epsilon::new(1.0).unwrap();
        for &d in &[0.0, 1e-12, 1e-6, 0.5, 0.999] {
            let b = Budget::new(eps, d).unwrap();
            assert_eq!(b.delta(), d);
            assert_eq!(b.eps().value(), 1.0);
        }
        assert!(Budget::pure(eps).is_pure());
        assert!(!Budget::approx(eps, 1e-6).unwrap().is_pure());
    }

    #[test]
    fn budget_rejects_invalid_deltas() {
        let eps = Epsilon::new(1.0).unwrap();
        for &d in &[-1e-9, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            assert!(Budget::new(eps, d).is_err(), "accepted δ={d}");
        }
        // approx additionally rejects δ = 0.
        assert!(Budget::approx(eps, 0.0).is_err());
    }

    #[test]
    fn with_eps_keeps_delta() {
        let b = Budget::approx(Epsilon::new(1.0).unwrap(), 1e-6).unwrap();
        let tighter = b.with_eps(Epsilon::new(0.25).unwrap());
        assert_eq!(tighter.eps().value(), 0.25);
        assert_eq!(tighter.delta(), 1e-6);
    }

    #[test]
    fn budget_display_mentions_delta() {
        let eps = Epsilon::new(0.5).unwrap();
        assert!(Budget::pure(eps).to_string().contains("δ=0"));
        let b = Budget::approx(eps, 1e-6).unwrap().to_string();
        assert!(b.contains("1e-6"), "{b}");
    }
}
