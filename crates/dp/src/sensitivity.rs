//! L1 sensitivity arithmetic.
//!
//! For a batch of linear queries with workload matrix `W`, one record
//! changing by 1 changes the exact answers by one **column** of `W`, so
//! the L1 sensitivity is the maximum absolute column sum
//! `Δ' = max_j Σ_i |W_ij|` (Section 3.2 of the paper, after ref \[16\]).
//! The same formula applied to the decomposition factor `L` gives the
//! paper's `Δ(B, L)` (Definition 2).

use lrm_linalg::Matrix;

/// L1 sensitivity of a workload matrix: `max_j Σ_i |W_ij|`.
///
/// This is the noise scale multiplier for noise-on-results (Eq. 5) and,
/// applied to `L`, the decomposition sensitivity of Definition 2.
pub fn l1_sensitivity(w: &Matrix) -> f64 {
    w.max_col_abs_sum()
}

/// The paper's query scale `Φ(B, L) = Σ_ij B_ij²` (Definition 1).
pub fn query_scale(b: &Matrix) -> f64 {
    b.squared_sum()
}

/// Expected total squared error of publishing `T · Lap(s)^k` — i.e.
/// `2 s² ‖T‖_F²`, the workhorse identity behind Lemma 1 and every
/// closed-form error expression in the harness.
pub fn linear_laplace_error(t: &Matrix, scale: f64) -> f64 {
    2.0 * scale * scale * t.squared_sum()
}

/// Expected total squared error of adding `Lap(s)` independently to `k`
/// outputs: `2 k s²`.
pub fn iid_laplace_error(k: usize, scale: f64) -> f64 {
    2.0 * k as f64 * scale * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_of_intro_example() {
        // Section 1: {q1, q2, q3} with q1 = total, q2 = NY+NJ, q3 = CA+WA
        // has sensitivity 2; {q2, q3} alone has sensitivity 1.
        let full = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        assert_eq!(l1_sensitivity(&full), 2.0);

        let partial = Matrix::from_rows(&[&[1.0, 1.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 1.0]]);
        assert_eq!(l1_sensitivity(&partial), 1.0);
    }

    #[test]
    fn sensitivity_of_weighted_example() {
        // Section 1, second example: q1 = 2x_NJ + x_CA + x_WA,
        // q2 = x_NJ + 2x_WA, q3 = x_NY + 2x_CA + 2x_WA → NOQ sensitivity 5
        // (a WA record affects q1 by 1 and q2, q3 by 2 each).
        let w = Matrix::from_rows(&[
            // NY    NJ    CA    WA
            &[0.0, 2.0, 1.0, 1.0],
            &[0.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 2.0, 2.0],
        ]);
        assert_eq!(l1_sensitivity(&w), 5.0);
    }

    #[test]
    fn negative_weights_count_absolutely() {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 0.5]]);
        assert_eq!(l1_sensitivity(&w), 2.0);
    }

    #[test]
    fn query_scale_is_squared_sum() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]);
        assert_eq!(query_scale(&b), 14.0);
    }

    #[test]
    fn error_identities_consistent() {
        // Publishing I · Lap(s)^k equals iid noise on k outputs.
        let t = Matrix::identity(5);
        assert_eq!(linear_laplace_error(&t, 2.0), iid_laplace_error(5, 2.0));
        // Scaling T by c scales the error by c².
        let t2 = t.scale(3.0);
        assert_eq!(
            linear_laplace_error(&t2, 2.0),
            9.0 * linear_laplace_error(&t, 2.0)
        );
    }

    #[test]
    fn lemma1_error_form() {
        // Lemma 1: error of B·Lap(Δ/ε)^r is 2·Φ(B,L)·Δ²/ε².
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 2.0]]);
        let (delta, eps) = (0.8, 0.4);
        let scale = delta / eps;
        let expected = 2.0 * query_scale(&b) * delta * delta / (eps * eps);
        assert!((linear_laplace_error(&b, scale) - expected).abs() < 1e-12);
    }
}
