//! L1 and L2 sensitivity arithmetic.
//!
//! For a batch of linear queries with workload matrix `W`, one record
//! changing by 1 changes the exact answers by one **column** of `W`, so
//! the L1 sensitivity is the maximum absolute column sum
//! `Δ' = max_j Σ_i |W_ij|` (Section 3.2 of the paper, after ref \[16\]).
//! The same formula applied to the decomposition factor `L` gives the
//! paper's `Δ(B, L)` (Definition 2).
//!
//! Under **approximate** (ε, δ)-DP the Gaussian mechanism calibrates
//! against the **L2** sensitivity instead — the maximum column Euclidean
//! norm `Δ₂ = max_j √(Σ_i W_ij²)` — which is never larger than Δ' and up
//! to `√m` smaller, the source of the Gaussian mechanism's accuracy edge
//! on large batches (journal extension of the paper, arXiv:1502.07526).

use lrm_linalg::Matrix;

/// Which sensitivity norm a strategy was optimized and calibrated for.
///
/// This is a *compatibility axis*, not a preference: a strategy whose
/// columns were projected onto the L1 ball bounds Laplace noise, and one
/// projected onto the L2 ball bounds Gaussian noise — serving one for the
/// other silently voids the privacy guarantee. Every cache key, store
/// header, and session handshake that identifies a compiled strategy must
/// therefore carry its norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SensitivityNorm {
    /// L1 (max absolute column sum) — pure ε-DP, Laplace noise.
    L1,
    /// L2 (max column Euclidean norm) — (ε, δ)-DP, Gaussian noise.
    L2,
}

impl SensitivityNorm {
    /// A short stable token for digests, store headers, and logs.
    pub fn token(&self) -> &'static str {
        match self {
            SensitivityNorm::L1 => "l1",
            SensitivityNorm::L2 => "l2",
        }
    }
}

impl std::fmt::Display for SensitivityNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// L1 sensitivity of a workload matrix: `max_j Σ_i |W_ij|`.
///
/// This is the noise scale multiplier for noise-on-results (Eq. 5) and,
/// applied to `L`, the decomposition sensitivity of Definition 2.
pub fn l1_sensitivity(w: &Matrix) -> f64 {
    w.max_col_abs_sum()
}

/// The paper's query scale `Φ(B, L) = Σ_ij B_ij²` (Definition 1).
pub fn query_scale(b: &Matrix) -> f64 {
    b.squared_sum()
}

/// Expected total squared error of publishing `T · Lap(s)^k` — i.e.
/// `2 s² ‖T‖_F²`, the workhorse identity behind Lemma 1 and every
/// closed-form error expression in the harness.
pub fn linear_laplace_error(t: &Matrix, scale: f64) -> f64 {
    2.0 * scale * scale * t.squared_sum()
}

/// Expected total squared error of adding `Lap(s)` independently to `k`
/// outputs: `2 k s²`.
pub fn iid_laplace_error(k: usize, scale: f64) -> f64 {
    2.0 * k as f64 * scale * scale
}

/// L2 sensitivity of a workload matrix: `max_j √(Σ_i W_ij²)`.
///
/// The Gaussian-mechanism counterpart of [`l1_sensitivity`]; always
/// `≤ l1_sensitivity(w)` by the norm inequality `‖·‖₂ ≤ ‖·‖₁`.
pub fn l2_sensitivity(w: &Matrix) -> f64 {
    let mut max = 0.0f64;
    for j in 0..w.cols() {
        let mut sq = 0.0;
        for i in 0..w.rows() {
            let v = w.get(i, j);
            sq += v * v;
        }
        max = max.max(sq);
    }
    max.sqrt()
}

/// Expected total squared error of publishing `T · N(0, σ²)^k` — i.e.
/// `σ² ‖T‖_F²`, the Gaussian twin of [`linear_laplace_error`] (the
/// Laplace variance is `2s²`, the Gaussian variance is `σ²`).
pub fn linear_gaussian_error(t: &Matrix, sigma: f64) -> f64 {
    sigma * sigma * t.squared_sum()
}

/// Expected total squared error of adding `N(0, σ²)` independently to `k`
/// outputs: `k σ²`.
pub fn iid_gaussian_error(k: usize, sigma: f64) -> f64 {
    k as f64 * sigma * sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_of_intro_example() {
        // Section 1: {q1, q2, q3} with q1 = total, q2 = NY+NJ, q3 = CA+WA
        // has sensitivity 2; {q2, q3} alone has sensitivity 1.
        let full = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        assert_eq!(l1_sensitivity(&full), 2.0);

        let partial = Matrix::from_rows(&[&[1.0, 1.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 1.0]]);
        assert_eq!(l1_sensitivity(&partial), 1.0);
    }

    #[test]
    fn sensitivity_of_weighted_example() {
        // Section 1, second example: q1 = 2x_NJ + x_CA + x_WA,
        // q2 = x_NJ + 2x_WA, q3 = x_NY + 2x_CA + 2x_WA → NOQ sensitivity 5
        // (a WA record affects q1 by 1 and q2, q3 by 2 each).
        let w = Matrix::from_rows(&[
            // NY    NJ    CA    WA
            &[0.0, 2.0, 1.0, 1.0],
            &[0.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 2.0, 2.0],
        ]);
        assert_eq!(l1_sensitivity(&w), 5.0);
    }

    #[test]
    fn negative_weights_count_absolutely() {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 0.5]]);
        assert_eq!(l1_sensitivity(&w), 2.0);
    }

    #[test]
    fn query_scale_is_squared_sum() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]);
        assert_eq!(query_scale(&b), 14.0);
    }

    #[test]
    fn error_identities_consistent() {
        // Publishing I · Lap(s)^k equals iid noise on k outputs.
        let t = Matrix::identity(5);
        assert_eq!(linear_laplace_error(&t, 2.0), iid_laplace_error(5, 2.0));
        // Scaling T by c scales the error by c².
        let t2 = t.scale(3.0);
        assert_eq!(
            linear_laplace_error(&t2, 2.0),
            9.0 * linear_laplace_error(&t, 2.0)
        );
    }

    #[test]
    fn l2_is_column_euclidean_norm_and_below_l1() {
        let w = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, -1.0]]);
        // Column 0: √(9+16) = 5; column 1: √2.
        assert!((l2_sensitivity(&w) - 5.0).abs() < 1e-12);
        assert!(l2_sensitivity(&w) <= l1_sensitivity(&w));
        // Identity: both norms are 1.
        let eye = Matrix::identity(4);
        assert_eq!(l2_sensitivity(&eye), 1.0);
        assert_eq!(l1_sensitivity(&eye), 1.0);
        // Tall all-ones column: L1 = m, L2 = √m.
        let ones = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        assert_eq!(l1_sensitivity(&ones), 4.0);
        assert!((l2_sensitivity(&ones) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_error_identities_consistent() {
        let t = Matrix::identity(5);
        assert_eq!(linear_gaussian_error(&t, 2.0), iid_gaussian_error(5, 2.0));
        let t2 = t.scale(3.0);
        assert_eq!(
            linear_gaussian_error(&t2, 2.0),
            9.0 * linear_gaussian_error(&t, 2.0)
        );
    }

    #[test]
    fn norm_tokens_are_stable() {
        assert_eq!(SensitivityNorm::L1.token(), "l1");
        assert_eq!(SensitivityNorm::L2.token(), "l2");
        assert_eq!(SensitivityNorm::L2.to_string(), "l2");
        assert!(SensitivityNorm::L1 < SensitivityNorm::L2);
    }

    #[test]
    fn lemma1_error_form() {
        // Lemma 1: error of B·Lap(Δ/ε)^r is 2·Φ(B,L)·Δ²/ε².
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 2.0]]);
        let (delta, eps) = (0.8, 0.4);
        let scale = delta / eps;
        let expected = 2.0 * query_scale(&b) * delta * delta / (eps * eps);
        assert!((linear_laplace_error(&b, scale) - expected).abs() < 1e-12);
    }
}
