//! Laplace distribution sampling.
//!
//! The Laplace Mechanism (Dwork et al., the paper's ref \[11\] and Eq. 3)
//! perturbs query answers with zero-mean Laplace noise of scale `Δ/ε`.
//! `Lap(s)` has density `exp(−|x|/s)/(2s)` and variance `2s²` — the `2s²`
//! is where the `2·Φ·Δ²/ε²` of Lemma 1 comes from.

use crate::error::DpError;
use rand::Rng;

/// A Laplace distribution with the given location and scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    location: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a distribution; the scale must be positive and finite.
    pub fn new(location: f64, scale: f64) -> Result<Self, DpError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(DpError::NonPositiveScale(scale));
        }
        if !location.is_finite() {
            return Err(DpError::NonFiniteLocation(location));
        }
        Ok(Self { location, scale })
    }

    /// Zero-mean Laplace with the given scale — `Lap(s)` in the paper.
    pub fn centered(scale: f64) -> Result<Self, DpError> {
        Self::new(0.0, scale)
    }

    /// The distribution's location (mean).
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The distribution's scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2s²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample by inverse-CDF: with `u ~ U(−½, ½)`,
    /// `x = μ − s·sign(u)·ln(1 − 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u = −½ (reachable: it is the lower endpoint of the half-open
        // range) would give ln(0) = −∞; redraw the zero-probability point.
        let u: f64 = loop {
            let u = rng.gen_range(-0.5..0.5);
            if u != -0.5 {
                break u;
            }
        };
        self.location - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Draws `n` i.i.d. samples — the `Lap(Δ/ε)^n` vector of Eq. 4–6.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.location).abs() / self.scale;
        (-z).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_moments_match() {
        // Law of large numbers check on mean and variance.
        let dist = Laplace::centered(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = dist.sample_vec(n, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        let expected_var = dist.variance(); // 8.0
        assert!(
            (var - expected_var).abs() / expected_var < 0.03,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn location_shifts_samples() {
        let dist = Laplace::new(10.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = dist.sample_vec(50_000, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let dist = Laplace::centered(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut samples = dist.sample_vec(n, &mut rng);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[-2.0, -1.0, 0.0, 0.5, 1.5] {
            let empirical = samples.partition_point(|&x| x < q) as f64 / n as f64;
            let analytic = dist.cdf(q);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "CDF mismatch at {q}: {empirical} vs {analytic}"
            );
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let dist = Laplace::new(1.0, 0.7).unwrap();
        let (a, b, steps) = (-20.0, 22.0, 200_000);
        let h = (b - a) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| dist.pdf(a + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn deterministic_given_seed() {
        let dist = Laplace::centered(1.0).unwrap();
        let a = dist.sample_vec(10, &mut StdRng::seed_from_u64(99));
        let b = dist.sample_vec(10, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn dp_guarantee_density_ratio() {
        // ε-DP for the scalar Laplace mechanism: for outputs R and
        // neighboring answers differing by Δ, pdf ratio ≤ exp(ε·Δ/scale·…).
        // With scale = Δ/ε the ratio at any point is ≤ exp(ε).
        let (delta, eps) = (1.0, 0.5);
        let scale = delta / eps;
        let d1 = Laplace::new(0.0, scale).unwrap();
        let d2 = Laplace::new(delta, scale).unwrap(); // neighbor's answer
        for &r in &[-3.0, -0.5, 0.0, 0.7, 2.0, 10.0] {
            let ratio = d1.pdf(r) / d2.pdf(r);
            assert!(ratio <= (eps).exp() + 1e-12, "ratio {ratio} at {r}");
            assert!(ratio >= (-eps).exp() - 1e-12);
        }
    }
}
