#![warn(missing_docs)]
//! Differential-privacy primitives for the Low-Rank Mechanism reproduction.
//!
//! * [`budget`] — the ε privacy budget type with validation and
//!   sequential-composition arithmetic.
//! * [`ledger`] — the [`BudgetLedger`], which debits a fixed total ε per
//!   release and refuses over-spends with a typed [`BudgetError`].
//! * [`concurrent`] — the [`SharedLedger`] thread-safe layer over the
//!   ledger, preserving the one-slack over-spend bound under contention.
//! * [`journal`] + [`durable`] — the crash-durable layer: a CRC-framed
//!   write-ahead journal (`LRMJ`) and the [`DurableLedger`] two-phase
//!   debit protocol (intent → settle/abort) built on it, so a tenant's
//!   ε-spend survives process restarts and a kill at any instant can
//!   only waste budget, never refund it (what the `lrm-server`
//!   per-tenant ledgers are built on).
//! * [`error`] — the typed [`DpError`] every constructor in this crate
//!   reports.
//! * [`laplace`] — Laplace distribution sampling (inverse-CDF), the noise
//!   primitive of every mechanism in the paper (Eq. 3).
//! * [`sensitivity`] — L1 sensitivity arithmetic: the workload sensitivity
//!   `Δ' = max_j Σ_i |W_ij|` used by noise-on-results (Eq. 5) and the
//!   decomposition sensitivity `Δ(B, L) = max_j Σ_i |L_ij|` of
//!   Definition 2.
//! * [`rng`] — deterministic seed derivation so that every experiment in
//!   the harness is reproducible bit-for-bit.

pub mod budget;
pub mod concurrent;
pub mod durable;
pub mod error;
pub mod journal;
pub mod laplace;
pub mod ledger;
pub mod rng;
pub mod sensitivity;

pub use budget::Epsilon;
pub use concurrent::SharedLedger;
pub use durable::{DurableError, DurableLedger, ResumeSummary};
pub use error::DpError;
pub use laplace::Laplace;
pub use ledger::{BudgetError, BudgetLedger};
