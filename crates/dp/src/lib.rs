#![warn(missing_docs)]
//! Differential-privacy primitives for the Low-Rank Mechanism reproduction.
//!
//! * [`budget`] — the ε privacy budget type with validation and
//!   sequential-composition arithmetic.
//! * [`laplace`] — Laplace distribution sampling (inverse-CDF), the noise
//!   primitive of every mechanism in the paper (Eq. 3).
//! * [`sensitivity`] — L1 sensitivity arithmetic: the workload sensitivity
//!   `Δ' = max_j Σ_i |W_ij|` used by noise-on-results (Eq. 5) and the
//!   decomposition sensitivity `Δ(B, L) = max_j Σ_i |L_ij|` of
//!   Definition 2.
//! * [`rng`] — deterministic seed derivation so that every experiment in
//!   the harness is reproducible bit-for-bit.

pub mod budget;
pub mod laplace;
pub mod rng;
pub mod sensitivity;

pub use budget::Epsilon;
pub use laplace::Laplace;
