#![warn(missing_docs)]
//! Differential-privacy primitives for the Low-Rank Mechanism reproduction.
//!
//! * [`budget`] — the ε privacy budget type with validation and
//!   sequential-composition arithmetic, plus the approximate-DP
//!   [`Budget`] `(ε, δ)` pair.
//! * [`ledger`] — the [`BudgetLedger`], which debits a fixed total
//!   (ε and, for approximate DP, δ) per release and refuses over-spends
//!   with a typed [`BudgetError`].
//! * [`concurrent`] — the [`SharedLedger`] thread-safe layer over the
//!   ledger, preserving the one-slack over-spend bound under contention.
//! * [`journal`] + [`durable`] — the crash-durable layer: a CRC-framed
//!   write-ahead journal (`LRMJ`, v2 with δ-carrying frames) and the
//!   [`DurableLedger`] two-phase debit protocol (intent → settle/abort)
//!   built on it, so a tenant's (ε, δ)-spend survives process restarts
//!   and a kill at any instant can only waste budget, never refund it
//!   (what the `lrm-server` per-tenant ledgers are built on).
//! * [`error`] — the typed [`DpError`] every constructor in this crate
//!   reports.
//! * [`laplace`] — Laplace distribution sampling (inverse-CDF), the noise
//!   primitive of every pure ε-DP mechanism in the paper (Eq. 3).
//! * [`gaussian`] — Gaussian distribution sampling (Box–Muller) with
//!   *analytic* (ε, δ) calibration by privacy-profile inversion, the
//!   noise primitive of the approximate-DP regime (journal extension of
//!   the paper, arXiv:1502.07526).
//! * [`sensitivity`] — L1 **and L2** sensitivity arithmetic: the workload
//!   sensitivity `Δ' = max_j Σ_i |W_ij|` used by noise-on-results
//!   (Eq. 5), the decomposition sensitivity `Δ(B, L)` of Definition 2,
//!   the Gaussian counterpart `Δ₂ = max_j ‖W_:j‖₂`, and the
//!   [`SensitivityNorm`] compatibility axis every strategy key carries.
//! * [`rng`] — deterministic seed derivation so that every experiment in
//!   the harness is reproducible bit-for-bit, including `substream`
//!   lanes for coalesced-batch noise top-ups.

pub mod budget;
pub mod concurrent;
pub mod durable;
pub mod error;
pub mod gaussian;
pub mod journal;
pub mod laplace;
pub mod ledger;
pub mod rng;
pub mod sensitivity;

pub use budget::{Budget, Epsilon};
pub use concurrent::SharedLedger;
pub use durable::{DurableError, DurableLedger, ResumeSummary};
pub use error::DpError;
pub use gaussian::{gaussian_profile_delta, Gaussian};
pub use laplace::Laplace;
pub use ledger::{BudgetError, BudgetLedger};
pub use sensitivity::SensitivityNorm;
