//! A thread-safe layer over [`BudgetLedger`] semantics for concurrent
//! serving, with a lock-free admission fast path.
//!
//! A serving runtime debits one tenant's budget from many threads at
//! once. The sequential [`BudgetLedger`] guarantees that the cumulative
//! granted spend never exceeds the advertised total by more than one
//! rounding slack (`total × 1e-9`) over its lifetime; [`SharedLedger`]
//! preserves exactly that bound under contention — but instead of
//! serializing every check-and-debit behind one mutex, each spend column
//! (ε, and δ under approximate DP) lives in an `AtomicU64` holding f64
//! bits, and a debit is one CAS loop that replicates the sequential
//! check-then-clamp *atomically*:
//!
//! 1. load the current spend, evaluate [`BudgetLedger::check`]'s exact
//!    predicate (exhaustion guard + one-slack headroom) against it;
//! 2. on pass, CAS the clamped new spend in; a lost race simply reloads
//!    and re-checks.
//!
//! Every successful CAS is therefore indistinguishable from a
//! `BudgetLedger::debit` executed at its linearization point, so any
//! concurrent history is equivalent to some sequential one — and
//! inherits the sequential ledger's over-spend bound and dust-debit
//! guard unchanged. Both-column (ε, δ) debits reserve ε first and δ
//! second; a δ refusal rolls back exactly the ε amount that was applied
//! (post-clamp), so a refused approximate debit leaves both columns
//! untouched at quiescence and is only ever *conservative* (transiently
//! inflated) in between.
//!
//! The two-phase [`begin_budget`](SharedLedger::begin_budget) /
//! [`settle`](SharedLedger::settle) / [`abort`](SharedLedger::abort)
//! path used by the serving runtime reserves on the same lock-free
//! columns; only the small settlement bookkeeping (the pending-intent
//! map) takes a mutex, and a *refused* reservation never touches it —
//! admission-storm traffic against an exhausted tenant runs entirely
//! lock-free.
//!
//! The type is a cheap `Arc` handle: clones share the same ledger, so a
//! scheduler thread can admission-[`check`](SharedLedger::check) while
//! workers reserve and settle after each successful release
//! (debit-after-success: a refused release never spends).

use crate::budget::{Budget, Epsilon};
use crate::ledger::{BudgetError, BudgetLedger, RELATIVE_SLACK};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable, thread-safe [`BudgetLedger`] with a lock-free debit path.
///
/// ```
/// use lrm_dp::{concurrent::SharedLedger, Epsilon};
///
/// let ledger = SharedLedger::new(Epsilon::new(1.0).unwrap());
/// let half = Epsilon::new(0.5).unwrap();
/// let handle = ledger.clone(); // same ledger, another thread's handle
/// ledger.debit(half).unwrap();
/// handle.debit(half).unwrap();
/// assert!(ledger.is_exhausted());
/// assert!(handle.debit(half).is_err());
/// ```
#[derive(Clone)]
pub struct SharedLedger {
    inner: Arc<Inner>,
}

struct Inner {
    total: f64,
    delta_total: f64,
    /// f64 bits of the cumulative ε spend (reservations included).
    spent_bits: AtomicU64,
    /// f64 bits of the cumulative δ spend (reservations included).
    delta_spent_bits: AtomicU64,
    /// Successful (settled or single-phase) debits.
    debits: AtomicUsize,
    /// Settlement bookkeeping only — the spend columns above never hide
    /// behind this lock. A refused reservation never takes it.
    settle: Mutex<Settlement>,
}

#[derive(Default)]
struct Settlement {
    /// Intent id → the (ε, δ) actually applied to the columns at
    /// reservation (post-clamp), so an abort refunds exactly what was
    /// taken.
    pending: HashMap<u64, (f64, f64)>,
    next_id: u64,
}

/// One lock-free check-and-debit over a single spend column. Replicates
/// [`BudgetLedger::check`] + the debit clamp atomically: returns the
/// amount actually applied (post-clamp) on success, the remaining budget
/// observed at refusal otherwise.
fn column_reserve(bits: &AtomicU64, total: f64, amount: f64) -> Result<f64, f64> {
    let mut cur = bits.load(Ordering::Acquire);
    loop {
        let spent = f64::from_bits(cur);
        let remaining = (total - spent).max(0.0);
        // Exactly `BudgetLedger::check`: an exhausted column refuses
        // *every* debit (the dust guard), otherwise one slack of
        // headroom absorbs f64 rounding.
        if remaining <= total * RELATIVE_SLACK || amount > remaining + total * RELATIVE_SLACK {
            return Err(remaining);
        }
        let new_spent = (spent + amount).min(total);
        match bits.compare_exchange_weak(
            cur,
            new_spent.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Ok(new_spent - spent),
            Err(actual) => cur = actual,
        }
    }
}

/// Refunds an amount previously applied by [`column_reserve`]. Only ever
/// *reduces* spend, so it cannot weaken the over-spend bound; the floor
/// at zero guards the (unreachable in practice) case of refunding more
/// than the column holds.
fn column_rollback(bits: &AtomicU64, applied: f64) {
    if applied <= 0.0 {
        return;
    }
    let mut cur = bits.load(Ordering::Acquire);
    loop {
        let new_spent = (f64::from_bits(cur) - applied).max(0.0);
        match bits.compare_exchange_weak(
            cur,
            new_spent.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Side-effect-free evaluation of one column's admission predicate.
fn column_check(bits: &AtomicU64, total: f64, amount: f64) -> Result<(), f64> {
    let spent = f64::from_bits(bits.load(Ordering::Acquire));
    let remaining = (total - spent).max(0.0);
    if remaining <= total * RELATIVE_SLACK || amount > remaining + total * RELATIVE_SLACK {
        return Err(remaining);
    }
    Ok(())
}

impl SharedLedger {
    /// Opens a shared pure-ε ledger holding `total` as the overall
    /// guarantee (δ-total 0: approximate-DP debits are refused).
    pub fn new(total: Epsilon) -> Self {
        Self::with_budget(Budget::pure(total))
    }

    /// Opens a shared ledger enforcing an overall (ε, δ) guarantee.
    pub fn with_budget(total: Budget) -> Self {
        Self {
            inner: Arc::new(Inner {
                total: total.eps().value(),
                delta_total: total.delta(),
                spent_bits: AtomicU64::new(0.0f64.to_bits()),
                delta_spent_bits: AtomicU64::new(0.0f64.to_bits()),
                debits: AtomicUsize::new(0),
                settle: Mutex::new(Settlement::default()),
            }),
        }
    }

    /// Locks the settlement bookkeeping, recovering from poisoning: a
    /// panic in one worker must not turn every later budget operation
    /// into a second panic — the spend columns themselves are atomics
    /// and always valid.
    fn settlement(&self) -> std::sync::MutexGuard<'_, Settlement> {
        self.inner.settle.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserves both columns of `budget` atomically (ε first, δ second;
    /// a δ refusal rolls back the applied ε), returning the post-clamp
    /// amounts applied to each column.
    fn reserve(&self, budget: Budget) -> Result<(f64, f64), BudgetError> {
        let eps = budget.eps().value();
        let delta = budget.delta();
        // Fail fast on the δ column before churning ε: purely advisory
        // (the authoritative δ check is the CAS below), but it spares
        // the ε rollback in the common δ-exhausted refusal.
        if delta > 0.0 {
            if let Err(remaining) =
                column_check(&self.inner.delta_spent_bits, self.inner.delta_total, delta)
            {
                return Err(BudgetError::DeltaExhausted {
                    requested: delta,
                    remaining,
                });
            }
        }
        let applied_eps =
            column_reserve(&self.inner.spent_bits, self.inner.total, eps).map_err(|remaining| {
                BudgetError::Exhausted {
                    requested: eps,
                    remaining,
                }
            })?;
        if delta == 0.0 {
            return Ok((applied_eps, 0.0));
        }
        match column_reserve(&self.inner.delta_spent_bits, self.inner.delta_total, delta) {
            Ok(applied_delta) => Ok((applied_eps, applied_delta)),
            Err(remaining) => {
                column_rollback(&self.inner.spent_bits, applied_eps);
                Err(BudgetError::DeltaExhausted {
                    requested: delta,
                    remaining,
                })
            }
        }
    }

    /// Side-effect-free admission check: could `eps` be debited right now?
    ///
    /// Under contention this is advisory — another thread may spend the
    /// budget between a successful `check` and the later
    /// [`debit`](SharedLedger::debit) — which
    /// is precisely why the debit re-validates atomically. Use `check` to
    /// fail fast at admission, never as a reservation.
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        column_check(&self.inner.spent_bits, self.inner.total, eps.value()).map_err(|remaining| {
            BudgetError::Exhausted {
                requested: eps.value(),
                remaining,
            }
        })
    }

    /// Side-effect-free admission check over both (ε, δ) columns. A pure
    /// (δ = 0) budget never consults the δ column, so pure traffic still
    /// flows through a δ-exhausted ledger.
    pub fn check_budget(&self, budget: Budget) -> Result<(), BudgetError> {
        self.check(budget.eps())?;
        let delta = budget.delta();
        if delta > 0.0 {
            column_check(&self.inner.delta_spent_bits, self.inner.delta_total, delta).map_err(
                |remaining| BudgetError::DeltaExhausted {
                    requested: delta,
                    remaining,
                },
            )?;
        }
        Ok(())
    }

    /// Atomically check-and-debit `eps`, returning the remaining budget.
    ///
    /// Exactly the sequential [`BudgetLedger::debit`] semantics — one
    /// CAS is the whole critical section, so the cumulative ε granted
    /// across all threads can never exceed the total by more than the
    /// documented one-slack bound.
    pub fn debit(&self, eps: Epsilon) -> Result<f64, BudgetError> {
        self.debit_budget(Budget::pure(eps))
    }

    /// Atomically check-and-debit an (ε, δ) budget, returning the
    /// remaining ε (the δ remainder is available via
    /// [`SharedLedger::delta_remaining`]).
    pub fn debit_budget(&self, budget: Budget) -> Result<f64, BudgetError> {
        self.reserve(budget)?;
        self.inner.debits.fetch_add(1, Ordering::Relaxed);
        Ok(self.remaining())
    }

    /// Phase one of a two-phase settlement: reserves `budget` (both
    /// columns, counted as spent for every concurrent check) and records
    /// a pending intent. The reservation itself is lock-free; only the
    /// intent bookkeeping takes the settlement mutex, and a refused
    /// reservation returns before ever touching it.
    pub fn begin_budget(&self, budget: Budget) -> Result<u64, BudgetError> {
        let applied = self.reserve(budget)?;
        let mut settlement = self.settlement();
        let id = settlement.next_id;
        settlement.next_id += 1;
        settlement.pending.insert(id, applied);
        Ok(id)
    }

    /// Phase two, success path: finalizes intent `id` and returns the
    /// remaining ε. Settling an unknown (or already-settled) id only
    /// reports the remainder. Never refuses — admission happened at
    /// [`begin_budget`](SharedLedger::begin_budget).
    pub fn settle(&self, id: u64) -> f64 {
        if self.settlement().pending.remove(&id).is_some() {
            self.inner.debits.fetch_add(1, Ordering::Relaxed);
        }
        self.remaining()
    }

    /// Phase two, failure path: refunds intent `id`, returning exactly
    /// the post-clamp amounts its reservation applied. Aborting an
    /// unknown id is a no-op.
    pub fn abort(&self, id: u64) {
        if let Some((eps, delta)) = self.settlement().pending.remove(&id) {
            column_rollback(&self.inner.spent_bits, eps);
            column_rollback(&self.inner.delta_spent_bits, delta);
        }
    }

    /// Intents reserved but not yet settled or aborted.
    pub fn pending(&self) -> usize {
        self.settlement().pending.len()
    }

    /// A point-in-time copy of the ledger state (total, spent, debit
    /// count; live reservations count as spent) for reporting.
    pub fn snapshot(&self) -> BudgetLedger {
        BudgetLedger::restore(
            self.inner.total,
            self.spent(),
            self.inner.delta_total,
            self.delta_spent(),
            self.debits(),
        )
    }

    /// The fixed total ε this ledger enforces.
    pub fn total(&self) -> f64 {
        self.inner.total
    }

    /// Cumulative ε debited or reserved so far.
    pub fn spent(&self) -> f64 {
        f64::from_bits(self.inner.spent_bits.load(Ordering::Acquire))
    }

    /// Budget still available, never negative.
    pub fn remaining(&self) -> f64 {
        (self.inner.total - self.spent()).max(0.0)
    }

    /// Number of successful debits (settled releases).
    pub fn debits(&self) -> usize {
        self.inner.debits.load(Ordering::Relaxed)
    }

    /// Whether the remaining budget is (numerically) zero.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() <= self.inner.total * RELATIVE_SLACK
    }

    /// The fixed total δ this ledger enforces (0 for a pure ε-DP ledger).
    pub fn delta_total(&self) -> f64 {
        self.inner.delta_total
    }

    /// Cumulative δ debited or reserved so far.
    pub fn delta_spent(&self) -> f64 {
        f64::from_bits(self.inner.delta_spent_bits.load(Ordering::Acquire))
    }

    /// δ budget still available, never negative.
    pub fn delta_remaining(&self) -> f64 {
        (self.inner.delta_total - self.delta_spent()).max(0.0)
    }

    /// Whether the remaining δ budget is (numerically) zero. A pure ε-DP
    /// ledger (δ-total 0) reports `true`: it has no δ to spend.
    pub fn is_delta_exhausted(&self) -> bool {
        self.delta_remaining() <= self.inner.delta_total * RELATIVE_SLACK
    }
}

impl fmt::Debug for SharedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedLedger")
            .field(&self.snapshot())
            .finish()
    }
}

impl fmt::Display for SharedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn budget(e: f64, d: f64) -> Budget {
        Budget::new(eps(e), d).unwrap()
    }

    #[test]
    fn clones_share_state() {
        let a = SharedLedger::new(eps(1.0));
        let b = a.clone();
        a.debit(eps(0.25)).unwrap();
        b.debit(eps(0.25)).unwrap();
        assert!((a.spent() - 0.5).abs() < 1e-15);
        assert_eq!(a.debits(), 2);
        assert_eq!(b.debits(), 2);
    }

    #[test]
    fn check_then_debit_round_trip() {
        let l = SharedLedger::new(eps(0.2));
        assert!(l.check(eps(0.2)).is_ok());
        assert!(l.check(eps(0.3)).is_err());
        l.debit(eps(0.2)).unwrap();
        assert!(l.is_exhausted());
        assert!(matches!(
            l.debit(eps(0.1)),
            Err(BudgetError::Exhausted { .. })
        ));
    }

    #[test]
    fn snapshot_is_a_copy() {
        let l = SharedLedger::new(eps(1.0));
        let before = l.snapshot();
        l.debit(eps(0.5)).unwrap();
        assert_eq!(before.spent(), 0.0);
        assert!((l.snapshot().spent() - 0.5).abs() < 1e-15);
        assert!((l.remaining() - 0.5).abs() < 1e-15);
        assert!((l.total() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn two_phase_reserve_settle_abort() {
        let l = SharedLedger::with_budget(budget(1.0, 1e-5));
        let id = l.begin_budget(budget(0.7, 4e-6)).unwrap();
        assert_eq!(l.pending(), 1);
        // The live reservation counts as spent for concurrent checks.
        assert!(l.check(eps(0.5)).is_err());
        assert!(l.check_budget(budget(0.1, 7e-6)).is_err());
        l.abort(id);
        assert_eq!(l.pending(), 0);
        assert_eq!(l.debits(), 0);
        assert!(l.check(eps(0.5)).is_ok());
        assert!((l.spent()).abs() < 1e-15);
        assert!((l.delta_spent()).abs() < 1e-20);

        let id = l.begin_budget(budget(0.7, 4e-6)).unwrap();
        let remaining = l.settle(id);
        assert!((remaining - 0.3).abs() < 1e-12);
        assert!((l.delta_remaining() - 6e-6).abs() < 1e-18);
        assert_eq!(l.debits(), 1);
        // Settling twice (or an unknown id) is a harmless report.
        assert!((l.settle(id) - 0.3).abs() < 1e-12);
        assert_eq!(l.debits(), 1);
        l.abort(9999);
        assert!((l.spent() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn delta_refusal_rolls_back_the_eps_column() {
        let l = SharedLedger::with_budget(budget(1.0, 1e-6));
        // ε fits, δ does not: neither column may hold anything after.
        let err = l.debit_budget(budget(0.1, 2e-6)).unwrap_err();
        assert!(matches!(err, BudgetError::DeltaExhausted { .. }));
        assert_eq!(l.spent(), 0.0);
        assert_eq!(l.delta_spent(), 0.0);
        assert_eq!(l.debits(), 0);
        // Pure traffic still flows after δ exhaustion.
        l.debit_budget(budget(0.1, 1e-6)).unwrap();
        assert!(l.is_delta_exhausted());
        assert!(l.debit_budget(budget(0.1, 1e-18)).is_err());
        l.debit_budget(budget(0.2, 0.0)).unwrap();
        assert!((l.spent() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn pure_ledger_refuses_any_delta() {
        let l = SharedLedger::new(eps(1.0));
        assert_eq!(l.delta_total(), 0.0);
        assert!(l.is_delta_exhausted());
        assert!(l.debit_budget(budget(0.1, 1e-12)).is_err());
        l.debit_budget(budget(0.1, 0.0)).unwrap();
        assert_eq!(l.debits(), 1);
    }

    #[test]
    fn survives_a_poisoned_settlement_lock() {
        let l = SharedLedger::new(eps(1.0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.inner.settle.lock().unwrap();
            panic!("poison the settlement lock");
        })
        .join();
        // The ledger stays usable and consistent after the panic.
        let id = l.begin_budget(budget(0.5, 0.0)).unwrap();
        l.settle(id);
        assert!((l.spent() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn display_and_debug_render() {
        let l = SharedLedger::new(eps(1.0));
        l.debit(eps(0.5)).unwrap();
        assert!(l.to_string().contains("1 release"));
        assert!(format!("{l:?}").contains("SharedLedger"));
    }
}
