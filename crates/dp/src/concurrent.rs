//! A thread-safe layer over [`BudgetLedger`] for concurrent serving.
//!
//! A serving runtime debits one tenant's budget from many worker threads
//! at once. The sequential [`BudgetLedger`] already guarantees that the
//! *observed* spend never exceeds the advertised total by more than one
//! rounding slack (`total × 1e-9`) over its lifetime; [`SharedLedger`]
//! preserves exactly that bound under contention by serializing every
//! check-and-debit behind one mutex — there is no check/debit race window
//! in which two threads can both reserve the last slice of budget.
//!
//! The type is a cheap `Arc` handle: clones share the same ledger, so a
//! scheduler thread can admission-[`check`](SharedLedger::check) while
//! workers [`debit`](SharedLedger::debit) after each successful release
//! (debit-after-success: a refused release never spends).

use crate::budget::Epsilon;
use crate::ledger::{BudgetError, BudgetLedger};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A cloneable, thread-safe [`BudgetLedger`].
///
/// ```
/// use lrm_dp::{concurrent::SharedLedger, Epsilon};
///
/// let ledger = SharedLedger::new(Epsilon::new(1.0).unwrap());
/// let half = Epsilon::new(0.5).unwrap();
/// let handle = ledger.clone(); // same ledger, another thread's handle
/// ledger.debit(half).unwrap();
/// handle.debit(half).unwrap();
/// assert!(ledger.is_exhausted());
/// assert!(handle.debit(half).is_err());
/// ```
#[derive(Clone)]
pub struct SharedLedger {
    inner: Arc<Mutex<BudgetLedger>>,
}

impl SharedLedger {
    /// Opens a shared ledger holding `total` as the overall guarantee.
    pub fn new(total: Epsilon) -> Self {
        Self {
            inner: Arc::new(Mutex::new(BudgetLedger::new(total))),
        }
    }

    /// Locks the ledger, recovering from poisoning: a panic in one worker
    /// must not turn every later budget operation into a second panic —
    /// the ledger state itself is always valid (debits are applied
    /// atomically under the lock).
    fn lock(&self) -> std::sync::MutexGuard<'_, BudgetLedger> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Side-effect-free admission check: could `eps` be debited right now?
    ///
    /// Under contention this is advisory — another thread may spend the
    /// budget between a successful `check` and the later
    /// [`debit`](SharedLedger::debit) — which
    /// is precisely why the debit re-validates atomically. Use `check` to
    /// fail fast at admission, never as a reservation.
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        self.lock().check(eps)
    }

    /// Atomically check-and-debit `eps`, returning the remaining budget.
    ///
    /// Exactly the sequential [`BudgetLedger::debit`] semantics, serialized:
    /// the cumulative ε granted across all threads can never exceed the
    /// total by more than the documented one-slack bound.
    pub fn debit(&self, eps: Epsilon) -> Result<f64, BudgetError> {
        self.lock().debit(eps)
    }

    /// A point-in-time copy of the underlying ledger (total, spent, debit
    /// count) for reporting.
    pub fn snapshot(&self) -> BudgetLedger {
        self.lock().clone()
    }

    /// The fixed total ε this ledger enforces.
    pub fn total(&self) -> f64 {
        self.lock().total()
    }

    /// Cumulative ε debited so far.
    pub fn spent(&self) -> f64 {
        self.lock().spent()
    }

    /// Budget still available, never negative.
    pub fn remaining(&self) -> f64 {
        self.lock().remaining()
    }

    /// Number of successful debits.
    pub fn debits(&self) -> usize {
        self.lock().debits()
    }

    /// Whether the remaining budget is (numerically) zero.
    pub fn is_exhausted(&self) -> bool {
        self.lock().is_exhausted()
    }
}

impl fmt::Debug for SharedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedLedger")
            .field(&self.snapshot())
            .finish()
    }
}

impl fmt::Display for SharedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn clones_share_state() {
        let a = SharedLedger::new(eps(1.0));
        let b = a.clone();
        a.debit(eps(0.25)).unwrap();
        b.debit(eps(0.25)).unwrap();
        assert!((a.spent() - 0.5).abs() < 1e-15);
        assert_eq!(a.debits(), 2);
        assert_eq!(b.debits(), 2);
    }

    #[test]
    fn check_then_debit_round_trip() {
        let l = SharedLedger::new(eps(0.2));
        assert!(l.check(eps(0.2)).is_ok());
        assert!(l.check(eps(0.3)).is_err());
        l.debit(eps(0.2)).unwrap();
        assert!(l.is_exhausted());
        assert!(matches!(
            l.debit(eps(0.1)),
            Err(BudgetError::Exhausted { .. })
        ));
    }

    #[test]
    fn snapshot_is_a_copy() {
        let l = SharedLedger::new(eps(1.0));
        let before = l.snapshot();
        l.debit(eps(0.5)).unwrap();
        assert_eq!(before.spent(), 0.0);
        assert!((l.snapshot().spent() - 0.5).abs() < 1e-15);
        assert!((l.remaining() - 0.5).abs() < 1e-15);
        assert!((l.total() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let l = SharedLedger::new(eps(1.0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.inner.lock().unwrap();
            panic!("poison the ledger lock");
        })
        .join();
        // The ledger stays usable and consistent after the panic.
        l.debit(eps(0.5)).unwrap();
        assert!((l.spent() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn display_and_debug_render() {
        let l = SharedLedger::new(eps(1.0));
        l.debit(eps(0.5)).unwrap();
        assert!(l.to_string().contains("1 release"));
        assert!(format!("{l:?}").contains("SharedLedger"));
    }
}
