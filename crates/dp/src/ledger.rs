//! Privacy-budget accounting by sequential composition.
//!
//! Sequential composition (the same theorem behind [`Epsilon::split`]): the
//! releases `M₁(x), …, M_k(x)` with budgets `ε₁, …, ε_k` jointly satisfy
//! `(Σεᵢ)`-DP. A [`BudgetLedger`] enforces the contrapositive — it holds a
//! fixed total and *debits* every release, refusing any debit that would
//! push the cumulative spend past the total, so a serving loop can never
//! silently exceed its advertised guarantee.

use crate::budget::Epsilon;
use crate::error::DpError;
use std::fmt;

/// Relative slack absorbing f64 rounding so that, e.g., ten debits of ε/10
/// sum to exactly ε instead of being rejected by the last few ulps.
const RELATIVE_SLACK: f64 = 1e-9;

/// A sequential-composition ledger over a fixed total ε.
///
/// ```
/// use lrm_dp::{BudgetLedger, Epsilon};
///
/// let mut ledger = BudgetLedger::new(Epsilon::new(1.0).unwrap());
/// let half = Epsilon::new(0.5).unwrap();
/// ledger.debit(half).unwrap();
/// ledger.debit(half).unwrap();
/// assert!(ledger.is_exhausted());
/// assert!(ledger.debit(half).is_err()); // over-spend refused, typed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    total: f64,
    spent: f64,
    debits: usize,
}

impl BudgetLedger {
    /// Opens a ledger holding `total` as the overall privacy guarantee.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
            debits: 0,
        }
    }

    /// Reconstructs a ledger from journal replay (or builds an
    /// admission view that counts reservations as spent); `spent` is
    /// clamped into `[0, total]`, matching [`BudgetLedger::debit`]'s
    /// own clamp.
    pub(crate) fn restore(total: f64, spent: f64, debits: usize) -> Self {
        Self {
            total,
            spent: spent.clamp(0.0, total),
            debits,
        }
    }

    /// The fixed total ε this ledger enforces.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Cumulative ε debited so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available, never negative.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Number of successful debits.
    pub fn debits(&self) -> usize {
        self.debits
    }

    /// Whether the remaining budget is (numerically) zero.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() <= self.total * RELATIVE_SLACK
    }

    /// The remaining budget as an [`Epsilon`], if any is left.
    pub fn remaining_epsilon(&self) -> Result<Epsilon, DpError> {
        Epsilon::new(self.remaining())
    }

    /// Checks whether `eps` could be debited without actually debiting.
    ///
    /// An exhausted ledger refuses *every* debit, including ones smaller
    /// than the rounding slack — otherwise a stream of sub-slack "dust"
    /// debits could keep releasing forever while `spent` stays clamped at
    /// `total`. With this guard the true cumulative spend can exceed the
    /// advertised total by at most one slack (`total × 1e-9`) over the
    /// ledger's whole lifetime.
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        if self.is_exhausted() || eps.value() > self.remaining() + self.total * RELATIVE_SLACK {
            return Err(BudgetError::Exhausted {
                requested: eps.value(),
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Debits `eps`, returning the remaining budget; refuses (leaving the
    /// ledger untouched) when the debit would exceed the total.
    pub fn debit(&mut self, eps: Epsilon) -> Result<f64, BudgetError> {
        self.check(eps)?;
        // The slack can let `spent` creep a few ulps past `total`; clamp so
        // `remaining`/`spent` never misreport the guarantee.
        self.spent = (self.spent + eps.value()).min(self.total);
        self.debits += 1;
        Ok(self.remaining())
    }
}

impl fmt::Display for BudgetLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ε-ledger: spent {:.6}/{:.6} over {} release(s)",
            self.spent, self.total, self.debits
        )
    }
}

/// Typed failure of a ledger operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// A debit was refused because it would exceed the ledger's total.
    Exhausted {
        /// The ε the caller asked to spend.
        requested: f64,
        /// The ε actually left in the ledger.
        remaining: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, only ε={remaining} remains"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn tracks_spend_and_remaining() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.remaining(), 1.0);
        assert!(!ledger.is_exhausted());

        let remaining = ledger.debit(eps(0.25)).unwrap();
        assert!((remaining - 0.75).abs() < 1e-15);
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn two_halves_equal_one_whole() {
        // Sequential composition accounting: two releases at ε/2 leave the
        // ledger in the same state as one release at ε.
        let mut split = BudgetLedger::new(eps(1.0));
        split.debit(eps(0.5)).unwrap();
        split.debit(eps(0.5)).unwrap();

        let mut whole = BudgetLedger::new(eps(1.0));
        whole.debit(eps(1.0)).unwrap();

        assert_eq!(split.spent(), whole.spent());
        assert_eq!(split.remaining(), whole.remaining());
        assert!(split.is_exhausted() && whole.is_exhausted());
    }

    #[test]
    fn refuses_over_spend_without_mutating() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.75)).unwrap();
        let err = ledger.debit(eps(0.5)).unwrap_err();
        match err {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 0.5);
                assert!((remaining - 0.25).abs() < 1e-15);
            }
        }
        // The refused debit left the ledger untouched.
        assert!((ledger.spent() - 0.75).abs() < 1e-15);
        assert_eq!(ledger.debits(), 1);
        // A debit that does fit still goes through.
        ledger.debit(eps(0.25)).unwrap();
        assert!(ledger.is_exhausted());
    }

    #[test]
    fn float_dust_does_not_block_the_last_release() {
        // 10 × ε/10 must consume exactly ε despite f64 rounding.
        let mut ledger = BudgetLedger::new(eps(1.0));
        let share = eps(1.0 / 10.0);
        for _ in 0..10 {
            ledger.debit(share).unwrap();
        }
        assert!(ledger.is_exhausted());
        assert!(ledger.spent() <= ledger.total());
        assert!(ledger.debit(share).is_err());
    }

    #[test]
    fn exhausted_ledger_refuses_dust_debits() {
        // Debits below the rounding slack must not leak through an
        // exhausted ledger: ε=1e-9 dust released in a loop would compose
        // to an unbounded true spend while `spent` stays clamped at total.
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(1.0)).unwrap();
        assert!(ledger.is_exhausted());
        assert!(ledger.debit(eps(1e-9)).is_err());
        assert!(ledger.debit(eps(1e-15)).is_err());
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn check_is_side_effect_free() {
        let ledger = BudgetLedger::new(eps(0.2));
        assert!(ledger.check(eps(0.2)).is_ok());
        assert!(ledger.check(eps(0.3)).is_err());
        assert_eq!(ledger.spent(), 0.0);
    }

    #[test]
    fn remaining_epsilon_round_trips() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.4)).unwrap();
        let rest = ledger.remaining_epsilon().unwrap();
        assert!((rest.value() - 0.6).abs() < 1e-12);
        ledger.debit(rest).unwrap();
        assert!(ledger.remaining_epsilon().is_err());
    }

    #[test]
    fn display_mentions_spend() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.5)).unwrap();
        let s = ledger.to_string();
        assert!(s.contains("0.5") && s.contains("1 release"), "{s}");
    }
}
