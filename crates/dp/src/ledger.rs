//! Privacy-budget accounting by sequential composition.
//!
//! Sequential composition (the same theorem behind [`Epsilon::split`]): the
//! releases `M₁(x), …, M_k(x)` with budgets `ε₁, …, ε_k` jointly satisfy
//! `(Σεᵢ)`-DP. A [`BudgetLedger`] enforces the contrapositive — it holds a
//! fixed total and *debits* every release, refusing any debit that would
//! push the cumulative spend past the total, so a serving loop can never
//! silently exceed its advertised guarantee.

use crate::budget::{Budget, Epsilon};
use crate::error::DpError;
use std::fmt;

/// Relative slack absorbing f64 rounding so that, e.g., ten debits of ε/10
/// sum to exactly ε instead of being rejected by the last few ulps.
/// Shared with [`crate::concurrent::SharedLedger`], whose lock-free fast
/// path must refuse and clamp with exactly these semantics.
pub(crate) const RELATIVE_SLACK: f64 = 1e-9;

/// A sequential-composition ledger over a fixed total ε (and, under
/// approximate DP, a fixed total δ).
///
/// Sequential composition holds coordinate-wise for (ε, δ): releases with
/// budgets `(ε₁, δ₁), …, (ε_k, δ_k)` jointly satisfy `(Σεᵢ, Σδᵢ)`-DP, so
/// the ledger tracks both columns and refuses a debit that would overflow
/// *either*. A ledger opened with [`BudgetLedger::new`] holds δ-total 0
/// and therefore refuses every approximate-DP debit.
///
/// ```
/// use lrm_dp::{BudgetLedger, Epsilon};
///
/// let mut ledger = BudgetLedger::new(Epsilon::new(1.0).unwrap());
/// let half = Epsilon::new(0.5).unwrap();
/// ledger.debit(half).unwrap();
/// ledger.debit(half).unwrap();
/// assert!(ledger.is_exhausted());
/// assert!(ledger.debit(half).is_err()); // over-spend refused, typed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    total: f64,
    spent: f64,
    delta_total: f64,
    delta_spent: f64,
    debits: usize,
}

impl BudgetLedger {
    /// Opens a pure ε-DP ledger holding `total` as the overall guarantee
    /// (δ-total 0: approximate-DP debits are refused).
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
            delta_total: 0.0,
            delta_spent: 0.0,
            debits: 0,
        }
    }

    /// Opens a ledger enforcing an overall (ε, δ) guarantee.
    pub fn with_budget(total: Budget) -> Self {
        Self {
            total: total.eps().value(),
            spent: 0.0,
            delta_total: total.delta(),
            delta_spent: 0.0,
            debits: 0,
        }
    }

    /// Reconstructs a ledger from journal replay (or builds an
    /// admission view that counts reservations as spent); spends are
    /// clamped into `[0, total]`, matching [`BudgetLedger::debit`]'s
    /// own clamp.
    pub(crate) fn restore(
        total: f64,
        spent: f64,
        delta_total: f64,
        delta_spent: f64,
        debits: usize,
    ) -> Self {
        Self {
            total,
            spent: spent.clamp(0.0, total),
            delta_total,
            delta_spent: delta_spent.clamp(0.0, delta_total),
            debits,
        }
    }

    /// The fixed total ε this ledger enforces.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Cumulative ε debited so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available, never negative.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Number of successful debits.
    pub fn debits(&self) -> usize {
        self.debits
    }

    /// Whether the remaining budget is (numerically) zero.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() <= self.total * RELATIVE_SLACK
    }

    /// The remaining budget as an [`Epsilon`], if any is left.
    pub fn remaining_epsilon(&self) -> Result<Epsilon, DpError> {
        Epsilon::new(self.remaining())
    }

    /// Checks whether `eps` could be debited without actually debiting.
    ///
    /// An exhausted ledger refuses *every* debit, including ones smaller
    /// than the rounding slack — otherwise a stream of sub-slack "dust"
    /// debits could keep releasing forever while `spent` stays clamped at
    /// `total`. With this guard the true cumulative spend can exceed the
    /// advertised total by at most one slack (`total × 1e-9`) over the
    /// ledger's whole lifetime.
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        if self.is_exhausted() || eps.value() > self.remaining() + self.total * RELATIVE_SLACK {
            return Err(BudgetError::Exhausted {
                requested: eps.value(),
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Debits `eps`, returning the remaining budget; refuses (leaving the
    /// ledger untouched) when the debit would exceed the total.
    pub fn debit(&mut self, eps: Epsilon) -> Result<f64, BudgetError> {
        self.check(eps)?;
        // The slack can let `spent` creep a few ulps past `total`; clamp so
        // `remaining`/`spent` never misreport the guarantee.
        self.spent = (self.spent + eps.value()).min(self.total);
        self.debits += 1;
        Ok(self.remaining())
    }

    /// The fixed total δ this ledger enforces (0 for a pure ε-DP ledger).
    pub fn delta_total(&self) -> f64 {
        self.delta_total
    }

    /// Cumulative δ debited so far.
    pub fn delta_spent(&self) -> f64 {
        self.delta_spent
    }

    /// δ budget still available, never negative.
    pub fn delta_remaining(&self) -> f64 {
        (self.delta_total - self.delta_spent).max(0.0)
    }

    /// Whether the remaining δ budget is (numerically) zero. A pure ε-DP
    /// ledger (δ-total 0) reports `true`: it has no δ to spend.
    pub fn is_delta_exhausted(&self) -> bool {
        self.delta_remaining() <= self.delta_total * RELATIVE_SLACK
    }

    /// Checks whether an (ε, δ) debit could go through without debiting.
    ///
    /// The ε column uses [`BudgetLedger::check`] unchanged; the δ column
    /// applies the same dust guard — once δ is exhausted, *every*
    /// positive-δ debit is refused, so sub-slack δ dust cannot compose
    /// past the advertised total. A pure (δ = 0) debit never consults the
    /// δ column, so pure traffic still flows through a δ-exhausted ledger.
    pub fn check_budget(&self, budget: Budget) -> Result<(), BudgetError> {
        self.check(budget.eps())?;
        let delta = budget.delta();
        if delta > 0.0
            && (self.is_delta_exhausted()
                || delta > self.delta_remaining() + self.delta_total * RELATIVE_SLACK)
        {
            return Err(BudgetError::DeltaExhausted {
                requested: delta,
                remaining: self.delta_remaining(),
            });
        }
        Ok(())
    }

    /// Debits an (ε, δ) budget atomically: both columns move or neither
    /// does. Returns the remaining ε (the δ remainder is available via
    /// [`BudgetLedger::delta_remaining`]).
    pub fn debit_budget(&mut self, budget: Budget) -> Result<f64, BudgetError> {
        self.check_budget(budget)?;
        self.spent = (self.spent + budget.eps().value()).min(self.total);
        self.delta_spent = (self.delta_spent + budget.delta()).min(self.delta_total);
        self.debits += 1;
        Ok(self.remaining())
    }
}

impl fmt::Display for BudgetLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta_total > 0.0 {
            write!(
                f,
                "(ε,δ)-ledger: spent ε {:.6}/{:.6}, δ {:.3e}/{:.3e} over {} release(s)",
                self.spent, self.total, self.delta_spent, self.delta_total, self.debits
            )
        } else {
            write!(
                f,
                "ε-ledger: spent {:.6}/{:.6} over {} release(s)",
                self.spent, self.total, self.debits
            )
        }
    }
}

/// Typed failure of a ledger operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// A debit was refused because it would exceed the ledger's ε total.
    Exhausted {
        /// The ε the caller asked to spend.
        requested: f64,
        /// The ε actually left in the ledger.
        remaining: f64,
    },
    /// A debit was refused because it would exceed the ledger's δ total
    /// (its ε component would have fit).
    DeltaExhausted {
        /// The δ the caller asked to spend.
        requested: f64,
        /// The δ actually left in the ledger.
        remaining: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, only ε={remaining} remains"
            ),
            BudgetError::DeltaExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested δ={requested}, only δ={remaining} remains"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn tracks_spend_and_remaining() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.remaining(), 1.0);
        assert!(!ledger.is_exhausted());

        let remaining = ledger.debit(eps(0.25)).unwrap();
        assert!((remaining - 0.75).abs() < 1e-15);
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn two_halves_equal_one_whole() {
        // Sequential composition accounting: two releases at ε/2 leave the
        // ledger in the same state as one release at ε.
        let mut split = BudgetLedger::new(eps(1.0));
        split.debit(eps(0.5)).unwrap();
        split.debit(eps(0.5)).unwrap();

        let mut whole = BudgetLedger::new(eps(1.0));
        whole.debit(eps(1.0)).unwrap();

        assert_eq!(split.spent(), whole.spent());
        assert_eq!(split.remaining(), whole.remaining());
        assert!(split.is_exhausted() && whole.is_exhausted());
    }

    #[test]
    fn refuses_over_spend_without_mutating() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.75)).unwrap();
        let err = ledger.debit(eps(0.5)).unwrap_err();
        match err {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 0.5);
                assert!((remaining - 0.25).abs() < 1e-15);
            }
            other => panic!("expected ε exhaustion, got {other:?}"),
        }
        // The refused debit left the ledger untouched.
        assert!((ledger.spent() - 0.75).abs() < 1e-15);
        assert_eq!(ledger.debits(), 1);
        // A debit that does fit still goes through.
        ledger.debit(eps(0.25)).unwrap();
        assert!(ledger.is_exhausted());
    }

    #[test]
    fn float_dust_does_not_block_the_last_release() {
        // 10 × ε/10 must consume exactly ε despite f64 rounding.
        let mut ledger = BudgetLedger::new(eps(1.0));
        let share = eps(1.0 / 10.0);
        for _ in 0..10 {
            ledger.debit(share).unwrap();
        }
        assert!(ledger.is_exhausted());
        assert!(ledger.spent() <= ledger.total());
        assert!(ledger.debit(share).is_err());
    }

    #[test]
    fn exhausted_ledger_refuses_dust_debits() {
        // Debits below the rounding slack must not leak through an
        // exhausted ledger: ε=1e-9 dust released in a loop would compose
        // to an unbounded true spend while `spent` stays clamped at total.
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(1.0)).unwrap();
        assert!(ledger.is_exhausted());
        assert!(ledger.debit(eps(1e-9)).is_err());
        assert!(ledger.debit(eps(1e-15)).is_err());
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn check_is_side_effect_free() {
        let ledger = BudgetLedger::new(eps(0.2));
        assert!(ledger.check(eps(0.2)).is_ok());
        assert!(ledger.check(eps(0.3)).is_err());
        assert_eq!(ledger.spent(), 0.0);
    }

    #[test]
    fn remaining_epsilon_round_trips() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.4)).unwrap();
        let rest = ledger.remaining_epsilon().unwrap();
        assert!((rest.value() - 0.6).abs() < 1e-12);
        ledger.debit(rest).unwrap();
        assert!(ledger.remaining_epsilon().is_err());
    }

    #[test]
    fn display_mentions_spend() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.debit(eps(0.5)).unwrap();
        let s = ledger.to_string();
        assert!(s.contains("0.5") && s.contains("1 release"), "{s}");
    }

    fn budget(e: f64, d: f64) -> Budget {
        Budget::new(eps(e), d).unwrap()
    }

    #[test]
    fn tracks_both_columns() {
        let mut ledger = BudgetLedger::with_budget(budget(1.0, 1e-5));
        ledger.debit_budget(budget(0.25, 4e-6)).unwrap();
        assert!((ledger.spent() - 0.25).abs() < 1e-15);
        assert!((ledger.delta_spent() - 4e-6).abs() < 1e-20);
        assert!((ledger.delta_remaining() - 6e-6).abs() < 1e-20);
        assert_eq!(ledger.debits(), 1);
        assert!(!ledger.is_delta_exhausted());
    }

    #[test]
    fn delta_over_spend_refused_atomically() {
        let mut ledger = BudgetLedger::with_budget(budget(1.0, 1e-6));
        // ε fits, δ does not: neither column may move.
        let err = ledger.debit_budget(budget(0.1, 2e-6)).unwrap_err();
        match err {
            BudgetError::DeltaExhausted {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 2e-6);
                assert_eq!(remaining, 1e-6);
            }
            other => panic!("expected δ exhaustion, got {other:?}"),
        }
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.delta_spent(), 0.0);
        assert_eq!(ledger.debits(), 0);
    }

    #[test]
    fn pure_ledger_refuses_any_delta() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        assert_eq!(ledger.delta_total(), 0.0);
        assert!(ledger.is_delta_exhausted());
        assert!(ledger.debit_budget(budget(0.1, 1e-12)).is_err());
        // Pure debits via the budget API still flow.
        ledger.debit_budget(budget(0.1, 0.0)).unwrap();
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn pure_traffic_survives_delta_exhaustion() {
        let mut ledger = BudgetLedger::with_budget(budget(1.0, 1e-6));
        ledger.debit_budget(budget(0.1, 1e-6)).unwrap();
        assert!(ledger.is_delta_exhausted());
        // δ dust refused after exhaustion…
        assert!(ledger.debit_budget(budget(0.1, 1e-18)).is_err());
        // …but δ=0 debits keep flowing against the remaining ε.
        ledger.debit_budget(budget(0.2, 0.0)).unwrap();
        assert!((ledger.spent() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn delta_dust_sums_exactly() {
        // 10 × δ/10 must consume exactly δ despite f64 rounding.
        let mut ledger = BudgetLedger::with_budget(budget(1.0, 1e-5));
        for _ in 0..10 {
            ledger.debit_budget(budget(0.05, 1e-6)).unwrap();
        }
        assert!(ledger.is_delta_exhausted());
        assert!(ledger.delta_spent() <= ledger.delta_total());
        assert!(ledger.debit_budget(budget(0.05, 1e-6)).is_err());
    }

    #[test]
    fn budget_display_mentions_delta_columns() {
        let mut ledger = BudgetLedger::with_budget(budget(1.0, 1e-5));
        ledger.debit_budget(budget(0.5, 5e-6)).unwrap();
        let s = ledger.to_string();
        assert!(s.contains("δ"), "{s}");
        assert!(s.contains("(ε,δ)-ledger"), "{s}");
    }
}
