//! Deterministic seed derivation.
//!
//! The experiment harness runs every (mechanism, workload, parameter,
//! trial) cell with an independent, reproducible random stream. Seeds are
//! derived by mixing a master seed with a stream label through
//! SplitMix64, so adding new cells never perturbs existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 mixing function — a high-quality 64-bit finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG from a master seed and a stream label.
pub fn derive_rng(master_seed: u64, stream: u64) -> StdRng {
    let mixed = splitmix64(splitmix64(master_seed) ^ stream.wrapping_mul(0xD1B54A32D192ED03));
    StdRng::seed_from_u64(mixed)
}

/// Derives a child stream label from a parent stream and a lane index.
///
/// The server uses this to split one batch's stream into independent
/// lanes — lane 0 is the shared base noise draw of a coalesced batch,
/// lane `k + 1` the member-`k` residual top-up — without the lanes
/// colliding with any other batch's stream (`substream(s, 0) ≠ s`, and
/// lanes of distinct parents mix apart through SplitMix64).
pub fn substream(stream: u64, lane: u64) -> u64 {
    splitmix64(splitmix64(stream ^ 0xA0761D6478BD642F) ^ lane.wrapping_mul(0xE7037ED1A0B428DB))
}

/// Derives a stream label from a string tag (FNV-1a), for readable call
/// sites like `derive_rng(seed, stream_of("fig4/lrm/n=1024/trial=3"))`.
pub fn stream_of(tag: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in tag.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 2);
        let xs: Vec<u64> = (0..5).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 3);
        let xs: Vec<u64> = (0..5).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(2, 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn stream_of_is_stable_and_distinguishes() {
        assert_eq!(stream_of("abc"), stream_of("abc"));
        assert_ne!(stream_of("abc"), stream_of("abd"));
        assert_ne!(stream_of(""), stream_of("a"));
    }

    #[test]
    fn substream_lanes_are_independent_and_stable() {
        assert_eq!(substream(7, 0), substream(7, 0));
        assert_ne!(substream(7, 0), substream(7, 1));
        assert_ne!(substream(7, 0), 7, "lane 0 must not alias the parent");
        assert_ne!(substream(7, 0), substream(8, 0));
        // A lane of one parent must not collide with another parent's base
        // stream for small neighborhoods (the batch-index case).
        for parent in 0..64u64 {
            for lane in 0..4u64 {
                assert_ne!(substream(parent, lane), parent + 1);
            }
        }
    }

    #[test]
    fn splitmix_mixes_low_bits() {
        // Consecutive seeds must not produce correlated first draws.
        let first: Vec<f64> = (0..100)
            .map(|s| derive_rng(s, 0).gen_range(0.0..1.0))
            .collect();
        let mean = first.iter().sum::<f64>() / first.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "mean {mean}");
    }
}
