//! Gaussian distribution sampling and analytic (ε, δ) calibration.
//!
//! The Gaussian mechanism (the journal extension of the paper, and the
//! approximate-DP regime generally) perturbs query answers with zero-mean
//! normal noise `N(0, σ²)` calibrated against the **L2** sensitivity of
//! the query map. Calibration here is *analytic* (Balle & Wang, ICML
//! 2018): instead of the classic — and for ε ≥ 1 invalid — bound
//! `σ = Δ₂√(2·ln(1.25/δ))/ε`, the exact privacy profile
//!
//! ```text
//! δ(ε, σ) = Φ(Δ₂/2σ − εσ/Δ₂) − e^ε · Φ(−Δ₂/2σ − εσ/Δ₂)
//! ```
//!
//! is inverted for σ by bisection (δ is strictly decreasing in σ), which
//! is tight at every ε and never over- or under-noises. The profile is
//! exposed as [`gaussian_profile_delta`] so tests can verify the bound
//! independently (e.g. against direct numerical integration of
//! `∫ max(p(y) − e^ε·q(y), 0) dy`).
//!
//! Φ is computed from an in-crate `erfc`: a Maclaurin series for small
//! arguments and the Legendre continued fraction (via the scaled
//! `erfcx(x) = e^{x²}·erfc(x)`, evaluated by modified Lentz) for large
//! ones — near machine precision across the range, with a log-space
//! variant so `e^ε · Φ(−t)` keeps its mass even when `Φ(−t)` underflows.

use crate::budget::Budget;
use crate::error::DpError;
use rand::Rng;

const SQRT_2: f64 = std::f64::consts::SQRT_2;
const FRAC_2_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// `erf(x)` by Maclaurin series — accurate (relative error a few ulps
/// amplified by at most `e^{x²}` of cancellation) for `|x| ≤ 2`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        let n = n as f64;
        term *= -x2 / n;
        let contrib = term / (2.0 * n + 1.0);
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    FRAC_2_SQRT_PI * sum
}

/// Scaled complementary error function `erfcx(x) = e^{x²}·erfc(x)` for
/// `x ≥ 2`, by the Legendre continued fraction
/// `√π·erfcx(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`
/// evaluated with the modified Lentz algorithm.
fn erfcx_cf(x: f64) -> f64 {
    debug_assert!(x >= 2.0);
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..400 {
        let a = k as f64 / 2.0;
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    1.0 / (f * std::f64::consts::PI.sqrt())
}

/// `erfc(x)` to near machine precision for all finite `x`.
fn erfc(x: f64) -> f64 {
    if x < -2.0 {
        2.0 - erfc(-x)
    } else if x <= 2.0 {
        1.0 - erf_series(x)
    } else {
        erfcx_cf(x) * (-x * x).exp()
    }
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / SQRT_2)
}

/// `ln Φ(z)`, stable far into the lower tail where `Φ(z)` underflows.
fn ln_normal_cdf(z: f64) -> f64 {
    if z > -2.0 * SQRT_2 {
        normal_cdf(z).ln()
    } else {
        let t = -z / SQRT_2; // t ≥ 2
        (0.5 * erfcx_cf(t)).ln() - t * t
    }
}

/// The exact privacy profile of the Gaussian mechanism: the smallest δ
/// for which `N(0, σ²)` noise on a query of L2 sensitivity `sensitivity`
/// satisfies (ε, δ)-DP.
///
/// This is the ground-truth curve [`Gaussian::calibrated`] inverts; it is
/// public so callers and tests can check any (σ, ε, δ) triple directly.
pub fn gaussian_profile_delta(sensitivity: f64, eps: f64, sigma: f64) -> f64 {
    assert!(
        sensitivity > 0.0 && sigma > 0.0 && eps > 0.0,
        "profile arguments must be positive"
    );
    let a = sensitivity / (2.0 * sigma) - eps * sigma / sensitivity;
    let b = -sensitivity / (2.0 * sigma) - eps * sigma / sensitivity;
    let term1 = normal_cdf(a);
    let term2 = (eps + ln_normal_cdf(b)).exp();
    (term1 - term2).clamp(0.0, 1.0)
}

/// A normal distribution `N(location, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    location: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a distribution; σ must be positive and finite.
    pub fn new(location: f64, sigma: f64) -> Result<Self, DpError> {
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(DpError::NonPositiveScale(sigma));
        }
        if !location.is_finite() {
            return Err(DpError::NonFiniteLocation(location));
        }
        Ok(Self { location, sigma })
    }

    /// Zero-mean normal with the given σ.
    pub fn centered(sigma: f64) -> Result<Self, DpError> {
        Self::new(0.0, sigma)
    }

    /// The analytically calibrated mechanism noise: the smallest σ such
    /// that `N(0, σ²)` on a query map of the given L2 sensitivity
    /// satisfies the (ε, δ) budget. Requires `δ > 0` (pure ε-DP is the
    /// Laplace mechanism's regime) and a positive finite sensitivity.
    pub fn calibrated(l2_sensitivity: f64, budget: Budget) -> Result<Self, DpError> {
        if !(l2_sensitivity > 0.0 && l2_sensitivity.is_finite()) {
            return Err(DpError::NonPositiveSensitivity(l2_sensitivity));
        }
        if budget.is_pure() {
            return Err(DpError::DeltaOutOfRange(0.0));
        }
        let eps = budget.eps().value();
        let delta = budget.delta();
        // Bracket: δ(σ) is strictly decreasing, → 1 as σ → 0 and → 0 as
        // σ → ∞, so a feasible upper end always exists.
        let mut hi = l2_sensitivity / eps;
        while gaussian_profile_delta(l2_sensitivity, eps, hi) > delta {
            hi *= 2.0;
            if !hi.is_finite() {
                return Err(DpError::NonPositiveScale(hi));
            }
        }
        let mut lo = hi;
        while lo > l2_sensitivity * 1e-12
            && gaussian_profile_delta(l2_sensitivity, eps, lo * 0.5) <= delta
        {
            lo *= 0.5;
        }
        lo *= 0.5;
        // Bisect to f64 resolution, keeping the feasible (hi) side.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if gaussian_profile_delta(l2_sensitivity, eps, mid) <= delta {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Self::centered(hi)
    }

    /// The distribution's location (mean).
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The distribution's standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The variance σ².
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Draws one sample by Box–Muller: with `u₁ ~ U(0,1]`, `u₂ ~ U[0,1)`,
    /// `x = μ + σ·√(−2·ln u₁)·cos(2π·u₂)`. Exactly two uniform draws per
    /// sample (the measure-zero `u₁ = 0` point is redrawn), so a fixed
    /// seed yields a bit-reproducible stream.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = loop {
            let u = rng.gen_range(0.0..1.0);
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen_range(0.0..1.0);
        let radius = (-2.0 * u1.ln()).sqrt();
        self.location + self.sigma * radius * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws `n` i.i.d. samples — the `N(0, σ²)^n` vector.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.location) / self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn budget(eps: f64, delta: f64) -> Budget {
        Budget::approx(Epsilon::new(eps).unwrap(), delta).unwrap()
    }

    #[test]
    fn erfc_matches_known_values() {
        // Reference values (Wolfram): erfc(0) = 1, erfc(1) = 0.15729920705…,
        // erfc(2) = 0.00467773498…, erfc(3) = 2.20904969985…e-5,
        // erfc(5) = 1.53745979442…e-12.
        let rel = |got: f64, want: f64| (got - want).abs() / want.abs();
        assert!((erfc(0.0) - 1.0).abs() < 1e-15);
        assert!(rel(erfc(1.0), 0.157_299_207_050_285_13) < 1e-13);
        // x = 2 sits at the series/continued-fraction switch, where the
        // series pays its worst cancellation (e^{x²} ≈ 55 amplification):
        // still ~4e-12 relative, far beyond what δ calibration needs.
        assert!(rel(erfc(2.0), 4.677_734_981_063_325e-3) < 1e-11);
        assert!(rel(erfc(3.0), 2.209_049_699_858_544e-5) < 1e-13);
        assert!(rel(erfc(5.0), 1.537_459_794_428_035e-12) < 1e-13);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-15);
    }

    #[test]
    fn ln_normal_cdf_is_continuous_and_deep() {
        // Continuity across the series/continued-fraction switch.
        for z in [-2.9, -2.83, -2.8, -2.5, -1.0, 0.0, 1.5] {
            let direct = normal_cdf(z).ln();
            let stable = ln_normal_cdf(z);
            assert!(
                (direct - stable).abs() < 1e-10 * direct.abs().max(1.0),
                "mismatch at {z}: {direct} vs {stable}"
            );
        }
        // Deep tail: Φ(-40) underflows but its log must not.
        let deep = ln_normal_cdf(-40.0);
        assert!(deep.is_finite() && deep < -700.0, "{deep}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::calibrated(0.0, budget(1.0, 1e-6)).is_err());
        assert!(Gaussian::calibrated(1.0, Budget::pure(Epsilon::new(1.0).unwrap())).is_err());
    }

    #[test]
    fn sample_moments_match() {
        let dist = Gaussian::centered(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = dist.sample_vec(n, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let expected_var = dist.variance(); // 4.0
        assert!(
            (var - expected_var).abs() / expected_var < 0.03,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let dist = Gaussian::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut samples = dist.sample_vec(n, &mut rng);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.0, 0.5, 1.0, 1.3, 2.0] {
            let empirical = samples.partition_point(|&x| x < q) as f64 / n as f64;
            let analytic = dist.cdf(q);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "CDF mismatch at {q}: {empirical} vs {analytic}"
            );
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let dist = Gaussian::new(1.0, 0.7).unwrap();
        let (a, b, steps) = (-10.0, 12.0, 200_000);
        let h = (b - a) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| dist.pdf(a + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn deterministic_given_seed() {
        let dist = Gaussian::centered(1.0).unwrap();
        let a = dist.sample_vec(10, &mut StdRng::seed_from_u64(99));
        let b = dist.sample_vec(10, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_meets_its_own_profile() {
        for &(eps, delta) in &[
            (0.1, 1e-6),
            (0.5, 1e-9),
            (1.0, 1e-6),
            (2.0, 1e-4),
            (8.0, 1e-10),
        ] {
            for &sens in &[0.5, 1.0, 3.0] {
                let g = Gaussian::calibrated(sens, budget(eps, delta)).unwrap();
                let achieved = gaussian_profile_delta(sens, eps, g.sigma());
                assert!(
                    achieved <= delta * (1.0 + 1e-9),
                    "σ={} gives δ={achieved} > {delta} at ε={eps}, Δ₂={sens}",
                    g.sigma()
                );
                // Tight: a 1% smaller σ must violate the budget.
                let slack = gaussian_profile_delta(sens, eps, g.sigma() * 0.99);
                assert!(slack > delta, "calibration not tight: {slack} ≤ {delta}");
            }
        }
    }

    #[test]
    fn calibration_never_exceeds_the_classic_bound() {
        // For ε ≤ 1 the classic σ = Δ₂√(2·ln(1.25/δ))/ε is a valid but
        // loose calibration; the analytic one must be no worse. This
        // cross-checks the profile against the textbook theorem without
        // circularity.
        for &(eps, delta) in &[(0.1f64, 1e-6f64), (0.3, 1e-9), (0.9, 1e-5)] {
            let sens = 1.0;
            let classic = sens * (2.0 * (1.25 / delta).ln()).sqrt() / eps;
            // The theorem guarantees the classic σ satisfies the bound…
            assert!(
                gaussian_profile_delta(sens, eps, classic) <= delta,
                "classic σ violates the profile at ε={eps}, δ={delta}"
            );
            // …and the analytic calibration improves on it.
            let g = Gaussian::calibrated(sens, budget(eps, delta)).unwrap();
            assert!(
                g.sigma() <= classic,
                "analytic σ={} worse than classic {classic}",
                g.sigma()
            );
        }
    }

    #[test]
    fn profile_matches_numerical_integration() {
        // δ(ε, σ) is by definition ∫ max(p₀(y) − e^ε·p_Δ(y), 0) dy for the
        // worst-case neighboring pair (shift by the full sensitivity).
        // Verify the closed form against midpoint quadrature.
        for &(sens, eps, sigma) in &[(1.0f64, 0.5f64, 1.5f64), (2.0, 1.0, 2.0), (1.0, 2.0, 0.8)] {
            let p = Gaussian::new(0.0, sigma).unwrap();
            let q = Gaussian::new(sens, sigma).unwrap();
            let (a, b, steps) = (-30.0 * sigma, 30.0 * sigma + sens, 400_000);
            let h = (b - a) / steps as f64;
            let numeric: f64 = (0..steps)
                .map(|i| {
                    let y = a + (i as f64 + 0.5) * h;
                    (p.pdf(y) - eps.exp() * q.pdf(y)).max(0.0) * h
                })
                .sum();
            let analytic = gaussian_profile_delta(sens, eps, sigma);
            assert!(
                (numeric - analytic).abs() < 1e-6 + 1e-3 * analytic,
                "profile mismatch at Δ₂={sens}, ε={eps}, σ={sigma}: \
                 numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn profile_is_monotone() {
        // Decreasing in σ, increasing in sensitivity, decreasing in ε.
        let base = gaussian_profile_delta(1.0, 1.0, 1.0);
        assert!(gaussian_profile_delta(1.0, 1.0, 2.0) < base);
        assert!(gaussian_profile_delta(2.0, 1.0, 1.0) > base);
        assert!(gaussian_profile_delta(1.0, 2.0, 1.0) < base);
    }

    #[test]
    fn sigma_scales_linearly_with_sensitivity() {
        let b = budget(1.0, 1e-6);
        let g1 = Gaussian::calibrated(1.0, b).unwrap();
        let g3 = Gaussian::calibrated(3.0, b).unwrap();
        assert!(
            (g3.sigma() / g1.sigma() - 3.0).abs() < 1e-9,
            "{} vs {}",
            g3.sigma(),
            g1.sigma()
        );
    }
}
