//! Crash-durable (ε, δ)-budget accounting: [`DurableLedger`].
//!
//! A [`DurableLedger`] wraps the sequential [`BudgetLedger`] with a
//! two-phase debit protocol and (optionally) the write-ahead journal of
//! [`crate::journal`]:
//!
//! 1. [`begin`](DurableLedger::begin) *reserves* the budget and appends
//!    a fsync'd `Intent` record — only after this may noise be drawn;
//! 2. [`settle`](DurableLedger::settle) finalizes the debit once the
//!    noisy answer is (about to be) released;
//! 3. [`abort`](DurableLedger::abort) refunds a reservation whose
//!    noise was never released.
//!
//! The same API works without a journal
//! ([`in_memory`](DurableLedger::in_memory)) so callers need not
//! branch on durability. Approximate-DP ledgers track a δ column next
//! to ε through the whole protocol — intents reserve both, settles
//! spend both, aborts refund both — using the v2 journal frames.
//!
//! # Conservative by construction
//!
//! Every failure resolves toward *more* spent budget, never less, in
//! **both** columns:
//!
//! * a journal replay counts unsettled intents as spent — a kill
//!   between intent and settle wastes the reserved (ε, δ) at worst;
//! * [`settle`](DurableLedger::settle) debits locally even when its
//!   journal append fails (the on-disk intent already replays as
//!   spent, so local and durable views agree);
//! * [`abort`](DurableLedger::abort) refunds only when the `Abort`
//!   record is durably appended; if the append fails, the reservation
//!   is kept forever (budget lost, guarantee intact);
//! * a journal with damage before its final frame opens fully
//!   exhausted — ε *and* δ.

use crate::budget::{Budget, Epsilon};
use crate::journal::{LedgerJournal, Record};
use crate::ledger::{BudgetError, BudgetLedger};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A thread-safe, optionally journal-backed two-phase budget ledger.
///
/// Cloning is cheap and shares the underlying state (like
/// [`crate::SharedLedger`]).
#[derive(Debug, Clone)]
pub struct DurableLedger {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    /// Settled (released) spend, both columns.
    ledger: BudgetLedger,
    /// ε reserved by live intents, not yet settled or aborted.
    reserved: f64,
    /// δ reserved by live intents.
    reserved_delta: f64,
    /// Live intents: id → reserved (ε, δ).
    pending: HashMap<u64, (f64, f64)>,
    next_id: u64,
    journal: Option<LedgerJournal>,
}

impl Inner {
    /// The ledger as admission control must see it: reservations count
    /// as spent, because a crash would replay them that way.
    fn view(&self) -> BudgetLedger {
        BudgetLedger::restore(
            self.ledger.total(),
            self.ledger.spent() + self.reserved,
            self.ledger.delta_total(),
            self.ledger.delta_spent() + self.reserved_delta,
            self.ledger.debits(),
        )
    }
}

/// What [`DurableLedger::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResumeSummary {
    /// Whether a prior journal with the same total was honored (false
    /// for a fresh ledger or a total change, which resets the grant).
    pub resumed: bool,
    /// Whether the journal had damage before its final frame; the
    /// ledger opened fully exhausted.
    pub corrupted: bool,
    /// Complete records replayed.
    pub replayed: usize,
    /// Settled ε spend after recovery (includes recovered intents).
    pub spent: f64,
    /// Settled δ spend after recovery (includes recovered intents).
    pub delta_spent: f64,
    /// ε from unsettled intents folded into the spend — reserved by a
    /// previous process but never released.
    pub recovered_pending: f64,
    /// δ from unsettled intents folded into the spend.
    pub recovered_pending_delta: f64,
}

/// Failure of a durable-ledger operation.
#[derive(Debug)]
pub enum DurableError {
    /// The debit was refused by budget accounting.
    Budget(BudgetError),
    /// The journal append failed; nothing was reserved and no noise
    /// may be drawn for this debit.
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Budget(e) => write!(f, "{e}"),
            DurableError::Io(e) => write!(f, "budget journal append failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Budget(e) => Some(e),
            DurableError::Io(e) => Some(e),
        }
    }
}

impl From<BudgetError> for DurableError {
    fn from(e: BudgetError) -> Self {
        DurableError::Budget(e)
    }
}

impl DurableLedger {
    /// A pure ε-DP ledger with no journal: same two-phase API,
    /// process-lifetime durability (the previous behavior of the
    /// serving runtime).
    pub fn in_memory(total: Epsilon) -> Self {
        Self::in_memory_budget(Budget::pure(total))
    }

    /// An (ε, δ) ledger with no journal.
    pub fn in_memory_budget(total: Budget) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                ledger: BudgetLedger::with_budget(total),
                reserved: 0.0,
                reserved_delta: 0.0,
                pending: HashMap::new(),
                next_id: 0,
                journal: None,
            })),
        }
    }

    /// Opens (creating if absent) the journal at `path` for a pure
    /// ε-DP grant. See [`DurableLedger::open_budget`].
    pub fn open(path: &Path, total: Epsilon) -> io::Result<(Self, ResumeSummary)> {
        Self::open_budget(path, Budget::pure(total))
    }

    /// Opens (creating if absent) the journal at `path`, replays it,
    /// and compacts it.
    ///
    /// If the journal's recorded (ε, δ) total equals `total`,
    /// accounting resumes where the previous process stopped —
    /// unsettled intents are folded into the settled spend of both
    /// columns (conservative). A different total in *either* column is
    /// an explicit re-grant and resets the spend to zero. A corrupted
    /// journal opens the ledger fully exhausted. An ε-only (v1)
    /// journal resumes under a pure grant exactly as before; under an
    /// approximate-DP grant its δ-total of 0 differs from the new
    /// grant, so the grant resets — a v1 history can never be
    /// mistaken for δ spend.
    pub fn open_budget(path: &Path, total: Budget) -> io::Result<(Self, ResumeSummary)> {
        let rep = LedgerJournal::replay_file(path)?;
        let pending_sum: f64 = rep.pending.values().map(|(e, _)| e).sum();
        let pending_delta: f64 = rep.pending.values().map(|(_, d)| d).sum();
        let total_eps = total.eps().value();
        let total_delta = total.delta();
        let (resumed, settled, settled_delta, debits) = if rep.corrupted {
            (true, total_eps, total_delta, rep.debits)
        } else {
            match rep.total {
                Some(t) if t == total_eps && rep.total_delta == total_delta => (
                    true,
                    (rep.settled + pending_sum).min(total_eps),
                    (rep.settled_delta + pending_delta).min(total_delta),
                    rep.debits,
                ),
                _ => (false, 0.0, 0.0, 0),
            }
        };
        let journal = LedgerJournal::create_compacted(
            path,
            total_eps,
            total_delta,
            settled,
            settled_delta,
            debits,
        )?;
        let summary = ResumeSummary {
            resumed: resumed && rep.records > 0,
            corrupted: rep.corrupted,
            replayed: rep.records,
            spent: settled,
            delta_spent: settled_delta,
            recovered_pending: if resumed && !rep.corrupted {
                pending_sum
            } else {
                0.0
            },
            recovered_pending_delta: if resumed && !rep.corrupted {
                pending_delta
            } else {
                0.0
            },
        };
        Ok((
            Self {
                inner: Arc::new(Mutex::new(Inner {
                    ledger: BudgetLedger::restore(
                        total_eps,
                        settled,
                        total_delta,
                        settled_delta,
                        debits as usize,
                    ),
                    reserved: 0.0,
                    reserved_delta: 0.0,
                    pending: HashMap::new(),
                    next_id: rep.next_id,
                    journal: Some(journal),
                })),
            },
            summary,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether `eps` could currently be reserved (reservations held by
    /// in-flight debits count as spent).
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        self.lock().view().check(eps)
    }

    /// Whether an (ε, δ) budget could currently be reserved.
    pub fn check_budget(&self, budget: Budget) -> Result<(), BudgetError> {
        self.lock().view().check_budget(budget)
    }

    /// Phase one of a pure ε-DP debit. See
    /// [`DurableLedger::begin_budget`].
    pub fn begin(&self, eps: Epsilon) -> Result<u64, DurableError> {
        self.begin_budget(Budget::pure(eps))
    }

    /// Phase one of a debit: reserves the (ε, δ) budget and durably
    /// records the intent. Only after this returns `Ok` may noise be
    /// drawn for the release it covers. On `Err`, nothing is reserved
    /// and nothing may be released.
    pub fn begin_budget(&self, budget: Budget) -> Result<u64, DurableError> {
        let mut inner = self.lock();
        inner.view().check_budget(budget)?;
        let id = inner.next_id;
        if let Some(journal) = &mut inner.journal {
            // An append failure may still have torn bytes onto disk;
            // replay drops a torn tail, consistent with "no noise was
            // drawn for this debit".
            journal
                .append(&Record::Intent {
                    id,
                    eps: budget.eps().value(),
                    delta: budget.delta(),
                })
                .map_err(DurableError::Io)?;
        }
        inner.next_id += 1;
        inner
            .pending
            .insert(id, (budget.eps().value(), budget.delta()));
        inner.reserved += budget.eps().value();
        inner.reserved_delta += budget.delta();
        Ok(id)
    }

    /// Phase two, success path: finalizes debit `id` and returns the
    /// remaining ε budget. Must be called *before* the noisy answer
    /// escapes the process. Unknown ids are a no-op (tolerated so a
    /// supervisor replaying work cannot double-debit).
    pub fn settle(&self, id: u64) -> f64 {
        let mut inner = self.lock();
        let Some((eps, delta)) = inner.pending.remove(&id) else {
            return inner.view().remaining();
        };
        inner.reserved = (inner.reserved - eps).max(0.0);
        inner.reserved_delta = (inner.reserved_delta - delta).max(0.0);
        // Force the local debit (never refuse): admission was checked at
        // begin() and the release is already committed to happen.
        inner.ledger = BudgetLedger::restore(
            inner.ledger.total(),
            inner.ledger.spent() + eps,
            inner.ledger.delta_total(),
            inner.ledger.delta_spent() + delta,
            inner.ledger.debits() + 1,
        );
        if let Some(journal) = &mut inner.journal {
            // Tolerated on failure: the on-disk intent replays as spent,
            // which is exactly the local state we just committed.
            let _ = journal.append(&Record::Settle { id });
        }
        inner.view().remaining()
    }

    /// Phase two, failure path: refunds debit `id` whose noise was
    /// never released. The refund only happens if the `Abort` record is
    /// durably appended; otherwise the reservation is kept forever
    /// (conservative — the on-disk intent would replay as spent).
    pub fn abort(&self, id: u64) {
        let mut inner = self.lock();
        let Some((eps, delta)) = inner.pending.remove(&id) else {
            return;
        };
        let refund = match &mut inner.journal {
            Some(journal) => journal.append(&Record::Abort { id }).is_ok(),
            None => true,
        };
        if refund {
            inner.reserved = (inner.reserved - eps).max(0.0);
            inner.reserved_delta = (inner.reserved_delta - delta).max(0.0);
        }
    }

    /// Convenience single-phase debit: `begin` + immediate `settle`.
    pub fn debit(&self, eps: Epsilon) -> Result<f64, DurableError> {
        let id = self.begin(eps)?;
        Ok(self.settle(id))
    }

    /// Convenience single-phase (ε, δ) debit.
    pub fn debit_budget(&self, budget: Budget) -> Result<f64, DurableError> {
        let id = self.begin_budget(budget)?;
        Ok(self.settle(id))
    }

    /// The fixed total ε.
    pub fn total(&self) -> f64 {
        self.lock().ledger.total()
    }

    /// The fixed total δ (0 for a pure ε-DP ledger).
    pub fn delta_total(&self) -> f64 {
        self.lock().ledger.delta_total()
    }

    /// Settled (released) ε spend — excludes live reservations.
    pub fn spent(&self) -> f64 {
        self.lock().ledger.spent()
    }

    /// Settled (released) δ spend — excludes live reservations.
    pub fn delta_spent(&self) -> f64 {
        self.lock().ledger.delta_spent()
    }

    /// ε reserved by in-flight debits.
    pub fn reserved(&self) -> f64 {
        self.lock().reserved
    }

    /// δ reserved by in-flight debits.
    pub fn reserved_delta(&self) -> f64 {
        self.lock().reserved_delta
    }

    /// ε budget available for new reservations.
    pub fn remaining(&self) -> f64 {
        self.lock().view().remaining()
    }

    /// δ budget available for new reservations.
    pub fn delta_remaining(&self) -> f64 {
        self.lock().view().delta_remaining()
    }

    /// Number of settled debits.
    pub fn debits(&self) -> usize {
        self.lock().ledger.debits()
    }

    /// Whether reservations have (numerically) exhausted the ε budget.
    pub fn is_exhausted(&self) -> bool {
        self.lock().view().is_exhausted()
    }

    /// A point-in-time copy of the *settled* accounting (reservations
    /// excluded), for reporting.
    pub fn snapshot(&self) -> BudgetLedger {
        self.lock().ledger.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn budget(e: f64, d: f64) -> Budget {
        Budget::new(eps(e), d).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrm_durable_{name}_{}.epsj", std::process::id()))
    }

    #[test]
    fn in_memory_two_phase_debit() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let id = ledger.begin(eps(0.4)).unwrap();
        // Reserved ε gates admission before it is settled.
        assert!(ledger.check(eps(0.7)).is_err());
        assert!(ledger.check(eps(0.6)).is_ok());
        let remaining = ledger.settle(id);
        assert!((remaining - 0.6).abs() < 1e-12);
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn abort_refunds_in_memory() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let id = ledger.begin(eps(0.9)).unwrap();
        assert!(ledger.begin(eps(0.5)).is_err());
        ledger.abort(id);
        assert!(ledger.begin(eps(0.5)).is_ok());
    }

    #[test]
    fn settle_of_unknown_id_is_a_noop() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let before = ledger.spent();
        ledger.settle(42);
        ledger.abort(42);
        assert_eq!(ledger.spent(), before);
        assert_eq!(ledger.debits(), 0);
    }

    #[test]
    fn durable_spend_survives_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, summary) = DurableLedger::open(&path, eps(2.0)).unwrap();
            assert!(!summary.resumed);
            ledger.debit(eps(0.5)).unwrap();
            ledger.debit(eps(0.25)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(2.0)).unwrap();
        assert!(summary.resumed);
        assert!(!summary.corrupted);
        assert!((summary.spent - 0.75).abs() < 1e-12);
        assert!((ledger.spent() - 0.75).abs() < 1e-12);
        assert_eq!(ledger.debits(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsettled_intent_counts_as_spent_after_reopen() {
        let path = tmp("pending");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            let _id = ledger.begin(eps(0.5)).unwrap();
            // Process "dies" here: intent durably recorded, never settled.
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert!((summary.recovered_pending - 0.5).abs() < 1e-12);
        assert!((ledger.spent() - 0.5).abs() < 1e-12);
        // The recovered spend gates new debits.
        assert!(ledger.begin(eps(0.75)).is_err());
        assert!(ledger.begin(eps(0.5)).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aborted_intent_is_refunded_after_reopen() {
        let path = tmp("abort");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            let id = ledger.begin(eps(0.5)).unwrap();
            ledger.abort(id);
        }
        let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert_eq!(ledger.spent(), 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn total_change_resets_the_grant() {
        let path = tmp("regrant");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            ledger.debit(eps(0.8)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(3.0)).unwrap();
        assert!(!summary.resumed);
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.total(), 3.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_journal_opens_exhausted() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            ledger.debit(eps(0.1)).unwrap();
            ledger.debit(eps(0.1)).unwrap();
        }
        // Flip a bit in the first record (not the final frame).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, summary) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert!(summary.corrupted);
        assert!(ledger.is_exhausted());
        assert!(ledger.begin(eps(0.05)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delta_spend_survives_reopen() {
        let path = tmp("delta_reopen");
        let _ = std::fs::remove_file(&path);
        let grant = budget(2.0, 1e-5);
        {
            let (ledger, summary) = DurableLedger::open_budget(&path, grant).unwrap();
            assert!(!summary.resumed);
            ledger.debit_budget(budget(0.5, 4e-6)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open_budget(&path, grant).unwrap();
        assert!(summary.resumed);
        assert!((summary.delta_spent - 4e-6).abs() < 1e-18);
        assert!((ledger.delta_spent() - 4e-6).abs() < 1e-18);
        assert_eq!(ledger.delta_total(), 1e-5);
        // The recovered δ spend gates new δ debits.
        assert!(ledger.debit_budget(budget(0.1, 7e-6)).is_err());
        assert!(ledger.debit_budget(budget(0.1, 6e-6)).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsettled_delta_intent_counts_as_spent_after_reopen() {
        // The "torn tail never refunds δ" replay property end to end: a
        // process dies after the δ intent is durably recorded but before
        // settle; the δ must be charged on resume.
        let path = tmp("delta_pending");
        let _ = std::fs::remove_file(&path);
        let grant = budget(1.0, 1e-5);
        {
            let (ledger, _) = DurableLedger::open_budget(&path, grant).unwrap();
            let _id = ledger.begin_budget(budget(0.5, 4e-6)).unwrap();
            // Process "dies" here.
        }
        let (ledger, summary) = DurableLedger::open_budget(&path, grant).unwrap();
        assert!((summary.recovered_pending_delta - 4e-6).abs() < 1e-18);
        assert!((ledger.delta_spent() - 4e-6).abs() < 1e-18);
        assert!(ledger.begin_budget(budget(0.1, 7e-6)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delta_grant_change_resets() {
        // Same ε total, different δ total: the grant must reset rather
        // than resume a ledger whose δ column means something else.
        let path = tmp("delta_regrant");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open_budget(&path, budget(1.0, 1e-5)).unwrap();
            ledger.debit_budget(budget(0.5, 4e-6)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open_budget(&path, budget(1.0, 1e-4)).unwrap();
        assert!(!summary.resumed);
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.delta_spent(), 0.0);
        assert_eq!(ledger.delta_total(), 1e-4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_journal_under_approx_grant_resets_not_resumes() {
        // A PR-7-era ε-only journal (δ-total 0) reopened under an
        // approximate-DP grant differs in the δ column, so it must
        // reset — v1 history can never masquerade as δ spend.
        let path = tmp("v1_under_approx");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            ledger.debit(eps(0.5)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open_budget(&path, budget(1.0, 1e-6)).unwrap();
        assert!(!summary.resumed);
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.delta_total(), 1e-6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_journal_exhausts_delta_too() {
        let path = tmp("delta_corrupt");
        let _ = std::fs::remove_file(&path);
        let grant = budget(1.0, 1e-5);
        {
            let (ledger, _) = DurableLedger::open_budget(&path, grant).unwrap();
            ledger.debit_budget(budget(0.1, 1e-6)).unwrap();
            ledger.debit_budget(budget(0.1, 1e-6)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, summary) = DurableLedger::open_budget(&path, grant).unwrap();
        assert!(summary.corrupted);
        assert!(ledger.is_exhausted());
        assert_eq!(ledger.delta_remaining(), 0.0);
        assert!(ledger.begin_budget(budget(0.01, 1e-9)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn abort_refunds_delta() {
        let ledger = DurableLedger::in_memory_budget(budget(1.0, 1e-6));
        let id = ledger.begin_budget(budget(0.5, 1e-6)).unwrap();
        assert!(ledger.check_budget(budget(0.1, 1e-9)).is_err());
        ledger.abort(id);
        assert_eq!(ledger.reserved_delta(), 0.0);
        assert!(ledger.check_budget(budget(0.1, 1e-7)).is_ok());
    }
}
