//! Crash-durable ε-budget accounting: [`DurableLedger`].
//!
//! A [`DurableLedger`] wraps the sequential [`BudgetLedger`] with a
//! two-phase debit protocol and (optionally) the write-ahead journal of
//! [`crate::journal`]:
//!
//! 1. [`begin`](DurableLedger::begin) *reserves* ε and appends a
//!    fsync'd `Intent` record — only after this may noise be drawn;
//! 2. [`settle`](DurableLedger::settle) finalizes the debit once the
//!    noisy answer is (about to be) released;
//! 3. [`abort`](DurableLedger::abort) refunds a reservation whose
//!    noise was never released.
//!
//! The same API works without a journal
//! ([`in_memory`](DurableLedger::in_memory)) so callers need not
//! branch on durability.
//!
//! # Conservative by construction
//!
//! Every failure resolves toward *more* spent budget, never less:
//!
//! * a journal replay counts unsettled intents as spent — a kill
//!   between intent and settle wastes the reserved ε at worst;
//! * [`settle`](DurableLedger::settle) debits locally even when its
//!   journal append fails (the on-disk intent already replays as
//!   spent, so local and durable views agree);
//! * [`abort`](DurableLedger::abort) refunds only when the `Abort`
//!   record is durably appended; if the append fails, the reservation
//!   is kept forever (budget lost, guarantee intact);
//! * a journal with damage before its final frame opens fully
//!   exhausted.

use crate::budget::Epsilon;
use crate::journal::{LedgerJournal, Record};
use crate::ledger::{BudgetError, BudgetLedger};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A thread-safe, optionally journal-backed two-phase budget ledger.
///
/// Cloning is cheap and shares the underlying state (like
/// [`crate::SharedLedger`]).
#[derive(Debug, Clone)]
pub struct DurableLedger {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    /// Settled (released) spend.
    ledger: BudgetLedger,
    /// ε reserved by live intents, not yet settled or aborted.
    reserved: f64,
    /// Live intents: id → reserved ε.
    pending: HashMap<u64, f64>,
    next_id: u64,
    journal: Option<LedgerJournal>,
}

impl Inner {
    /// The ledger as admission control must see it: reservations count
    /// as spent, because a crash would replay them that way.
    fn view(&self) -> BudgetLedger {
        BudgetLedger::restore(
            self.ledger.total(),
            self.ledger.spent() + self.reserved,
            self.ledger.debits(),
        )
    }
}

/// What [`DurableLedger::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResumeSummary {
    /// Whether a prior journal with the same total was honored (false
    /// for a fresh ledger or a total change, which resets the grant).
    pub resumed: bool,
    /// Whether the journal had damage before its final frame; the
    /// ledger opened fully exhausted.
    pub corrupted: bool,
    /// Complete records replayed.
    pub replayed: usize,
    /// Settled spend after recovery (includes recovered intents).
    pub spent: f64,
    /// ε from unsettled intents folded into the spend — reserved by a
    /// previous process but never released.
    pub recovered_pending: f64,
}

/// Failure of a durable-ledger operation.
#[derive(Debug)]
pub enum DurableError {
    /// The debit was refused by budget accounting.
    Budget(BudgetError),
    /// The journal append failed; nothing was reserved and no noise
    /// may be drawn for this debit.
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Budget(e) => write!(f, "{e}"),
            DurableError::Io(e) => write!(f, "budget journal append failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Budget(e) => Some(e),
            DurableError::Io(e) => Some(e),
        }
    }
}

impl From<BudgetError> for DurableError {
    fn from(e: BudgetError) -> Self {
        DurableError::Budget(e)
    }
}

impl DurableLedger {
    /// A ledger with no journal: same two-phase API, process-lifetime
    /// durability (the previous behavior of the serving runtime).
    pub fn in_memory(total: Epsilon) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                ledger: BudgetLedger::new(total),
                reserved: 0.0,
                pending: HashMap::new(),
                next_id: 0,
                journal: None,
            })),
        }
    }

    /// Opens (creating if absent) the journal at `path`, replays it,
    /// and compacts it.
    ///
    /// If the journal's recorded total equals `total`, accounting
    /// resumes where the previous process stopped — unsettled intents
    /// are folded into the settled spend (conservative). A different
    /// total is an explicit re-grant and resets the spend to zero. A
    /// corrupted journal opens the ledger fully exhausted.
    pub fn open(path: &Path, total: Epsilon) -> io::Result<(Self, ResumeSummary)> {
        let rep = LedgerJournal::replay_file(path)?;
        let pending_sum: f64 = rep.pending.values().sum();
        let (resumed, settled, debits) = if rep.corrupted {
            (true, total.value(), rep.debits)
        } else {
            match rep.total {
                Some(t) if t == total.value() => (
                    true,
                    (rep.settled + pending_sum).min(total.value()),
                    rep.debits,
                ),
                _ => (false, 0.0, 0),
            }
        };
        let journal = LedgerJournal::create_compacted(path, total.value(), settled, debits)?;
        let summary = ResumeSummary {
            resumed: resumed && rep.records > 0,
            corrupted: rep.corrupted,
            replayed: rep.records,
            spent: settled,
            recovered_pending: if resumed && !rep.corrupted {
                pending_sum
            } else {
                0.0
            },
        };
        Ok((
            Self {
                inner: Arc::new(Mutex::new(Inner {
                    ledger: BudgetLedger::restore(total.value(), settled, debits as usize),
                    reserved: 0.0,
                    pending: HashMap::new(),
                    next_id: rep.next_id,
                    journal: Some(journal),
                })),
            },
            summary,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether `eps` could currently be reserved (reservations held by
    /// in-flight debits count as spent).
    pub fn check(&self, eps: Epsilon) -> Result<(), BudgetError> {
        self.lock().view().check(eps)
    }

    /// Phase one of a debit: reserves `eps` and durably records the
    /// intent. Only after this returns `Ok` may noise be drawn for the
    /// release it covers. On `Err`, nothing is reserved and nothing may
    /// be released.
    pub fn begin(&self, eps: Epsilon) -> Result<u64, DurableError> {
        let mut inner = self.lock();
        inner.view().check(eps)?;
        let id = inner.next_id;
        if let Some(journal) = &mut inner.journal {
            // An append failure may still have torn bytes onto disk;
            // replay drops a torn tail, consistent with "no noise was
            // drawn for this debit".
            journal
                .append(&Record::Intent {
                    id,
                    eps: eps.value(),
                })
                .map_err(DurableError::Io)?;
        }
        inner.next_id += 1;
        inner.pending.insert(id, eps.value());
        inner.reserved += eps.value();
        Ok(id)
    }

    /// Phase two, success path: finalizes debit `id` and returns the
    /// remaining budget. Must be called *before* the noisy answer
    /// escapes the process. Unknown ids are a no-op (tolerated so a
    /// supervisor replaying work cannot double-debit).
    pub fn settle(&self, id: u64) -> f64 {
        let mut inner = self.lock();
        let Some(eps) = inner.pending.remove(&id) else {
            return inner.view().remaining();
        };
        inner.reserved = (inner.reserved - eps).max(0.0);
        // Force the local debit (never refuse): admission was checked at
        // begin() and the release is already committed to happen.
        inner.ledger = BudgetLedger::restore(
            inner.ledger.total(),
            inner.ledger.spent() + eps,
            inner.ledger.debits() + 1,
        );
        if let Some(journal) = &mut inner.journal {
            // Tolerated on failure: the on-disk intent replays as spent,
            // which is exactly the local state we just committed.
            let _ = journal.append(&Record::Settle { id });
        }
        inner.view().remaining()
    }

    /// Phase two, failure path: refunds debit `id` whose noise was
    /// never released. The refund only happens if the `Abort` record is
    /// durably appended; otherwise the reservation is kept forever
    /// (conservative — the on-disk intent would replay as spent).
    pub fn abort(&self, id: u64) {
        let mut inner = self.lock();
        let Some(eps) = inner.pending.remove(&id) else {
            return;
        };
        let refund = match &mut inner.journal {
            Some(journal) => journal.append(&Record::Abort { id }).is_ok(),
            None => true,
        };
        if refund {
            inner.reserved = (inner.reserved - eps).max(0.0);
        }
    }

    /// Convenience single-phase debit: `begin` + immediate `settle`.
    pub fn debit(&self, eps: Epsilon) -> Result<f64, DurableError> {
        let id = self.begin(eps)?;
        Ok(self.settle(id))
    }

    /// The fixed total ε.
    pub fn total(&self) -> f64 {
        self.lock().ledger.total()
    }

    /// Settled (released) spend — excludes live reservations.
    pub fn spent(&self) -> f64 {
        self.lock().ledger.spent()
    }

    /// ε reserved by in-flight debits.
    pub fn reserved(&self) -> f64 {
        self.lock().reserved
    }

    /// Budget available for new reservations.
    pub fn remaining(&self) -> f64 {
        self.lock().view().remaining()
    }

    /// Number of settled debits.
    pub fn debits(&self) -> usize {
        self.lock().ledger.debits()
    }

    /// Whether reservations have (numerically) exhausted the budget.
    pub fn is_exhausted(&self) -> bool {
        self.lock().view().is_exhausted()
    }

    /// A point-in-time copy of the *settled* accounting (reservations
    /// excluded), for reporting.
    pub fn snapshot(&self) -> BudgetLedger {
        self.lock().ledger.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrm_durable_{name}_{}.epsj", std::process::id()))
    }

    #[test]
    fn in_memory_two_phase_debit() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let id = ledger.begin(eps(0.4)).unwrap();
        // Reserved ε gates admission before it is settled.
        assert!(ledger.check(eps(0.7)).is_err());
        assert!(ledger.check(eps(0.6)).is_ok());
        let remaining = ledger.settle(id);
        assert!((remaining - 0.6).abs() < 1e-12);
        assert_eq!(ledger.debits(), 1);
    }

    #[test]
    fn abort_refunds_in_memory() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let id = ledger.begin(eps(0.9)).unwrap();
        assert!(ledger.begin(eps(0.5)).is_err());
        ledger.abort(id);
        assert!(ledger.begin(eps(0.5)).is_ok());
    }

    #[test]
    fn settle_of_unknown_id_is_a_noop() {
        let ledger = DurableLedger::in_memory(eps(1.0));
        let before = ledger.spent();
        ledger.settle(42);
        ledger.abort(42);
        assert_eq!(ledger.spent(), before);
        assert_eq!(ledger.debits(), 0);
    }

    #[test]
    fn durable_spend_survives_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, summary) = DurableLedger::open(&path, eps(2.0)).unwrap();
            assert!(!summary.resumed);
            ledger.debit(eps(0.5)).unwrap();
            ledger.debit(eps(0.25)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(2.0)).unwrap();
        assert!(summary.resumed);
        assert!(!summary.corrupted);
        assert!((summary.spent - 0.75).abs() < 1e-12);
        assert!((ledger.spent() - 0.75).abs() < 1e-12);
        assert_eq!(ledger.debits(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsettled_intent_counts_as_spent_after_reopen() {
        let path = tmp("pending");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            let _id = ledger.begin(eps(0.5)).unwrap();
            // Process "dies" here: intent durably recorded, never settled.
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert!((summary.recovered_pending - 0.5).abs() < 1e-12);
        assert!((ledger.spent() - 0.5).abs() < 1e-12);
        // The recovered spend gates new debits.
        assert!(ledger.begin(eps(0.75)).is_err());
        assert!(ledger.begin(eps(0.5)).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aborted_intent_is_refunded_after_reopen() {
        let path = tmp("abort");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            let id = ledger.begin(eps(0.5)).unwrap();
            ledger.abort(id);
        }
        let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert_eq!(ledger.spent(), 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn total_change_resets_the_grant() {
        let path = tmp("regrant");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            ledger.debit(eps(0.8)).unwrap();
        }
        let (ledger, summary) = DurableLedger::open(&path, eps(3.0)).unwrap();
        assert!(!summary.resumed);
        assert_eq!(ledger.spent(), 0.0);
        assert_eq!(ledger.total(), 3.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_journal_opens_exhausted() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (ledger, _) = DurableLedger::open(&path, eps(1.0)).unwrap();
            ledger.debit(eps(0.1)).unwrap();
            ledger.debit(eps(0.1)).unwrap();
        }
        // Flip a bit in the first record (not the final frame).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, summary) = DurableLedger::open(&path, eps(1.0)).unwrap();
        assert!(summary.corrupted);
        assert!(ledger.is_exhausted());
        assert!(ledger.begin(eps(0.05)).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
