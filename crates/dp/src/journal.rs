//! Write-ahead journal for durable ε-budget accounting.
//!
//! The serving runtime's privacy guarantee must be an invariant of the
//! *deployment*, not of one process lifetime — a crash must never act as
//! a budget refill. This module provides the on-disk format and replay
//! logic backing [`crate::DurableLedger`]: an append-only, CRC-framed
//! journal (`LRMJ`) recording a debit *intent* before any noise is
//! drawn and a *settle*/*abort* after, each append fsync'd before its
//! effect is allowed to escape the process.
//!
//! # Format
//!
//! ```text
//! header:  "LRMJ" · u32 LE version (1 = ε-only, 2 = adds (ε,δ) frames)
//! record:  u8 tag · payload · u32 LE CRC-32 (IEEE) over tag+payload
//!
//! tag 1  Grant     { total: f64 }            — resets accounting (δ-total 0)
//! tag 2  Intent    { id: u64, eps: f64 }     — debit reserved, pre-noise
//! tag 3  Settle    { id: u64 }               — noise released, debit final
//! tag 4  Abort     { id: u64 }               — debit refunded, no release
//! tag 5  Snapshot  { settled: f64, debits: u64 } — compaction summary
//! tag 6  Grant2    { total: f64, total_delta: f64 }
//! tag 7  Intent2   { id: u64, eps: f64, delta: f64 }
//! tag 8  Snapshot2 { settled: f64, settled_delta: f64, debits: u64 }
//! ```
//!
//! Version 2 (this release) adds the three `…2` frames carrying δ spend;
//! settle/abort are id-only and unchanged. The writer emits the compact
//! v1 tag whenever the δ component is exactly zero, so a pure ε-DP
//! ledger's journal is byte-identical to what the v1 writer produced,
//! and replay accepts both header versions — a pre-existing ε-only
//! journal resumes with δ-total 0 (conservative: it can never have δ
//! spend to refund).
//!
//! # Crash semantics
//!
//! Replay is deliberately asymmetric:
//!
//! * an **incomplete final frame** (torn write, or a CRC-corrupt frame
//!   at the exact end of the file — indistinguishable from a torn write
//!   of exactly frame length) is *dropped*, but only for the three
//!   **operation** tags (intent/settle/abort). Those are the only
//!   records ever live-appended, and every append is fsync'd before the
//!   operation it records takes effect, so a torn final op never
//!   released anything. Dropping a final *settle* or *abort* leaves its
//!   intent pending — which replay counts as **spent** — so the error
//!   is only ever in the conservative direction. A damaged final
//!   *grant* or *snapshot* is **fatal** instead: those frames are only
//!   ever written through an atomic temp-file + rename compaction
//!   (never a live append), and a snapshot summarizes history the
//!   compaction already destroyed — dropping it would silently refund
//!   everything it recorded. Likewise a bare header with no frames at
//!   all is fatal: compaction never leaves one behind, so it can only
//!   be truncation damage;
//! * **any damage before the final frame** (CRC mismatch, unknown tag,
//!   bad header) means the journal cannot be trusted at all; replay
//!   reports it corrupted and the ledger opens fully **exhausted**
//!   (spent = total). Budget is lost, privacy is not.
//!
//! Unsettled intents count as spent on replay: a kill between intent
//! and settle can at worst waste the reserved ε, never double-release.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"LRMJ";
/// Version written by this build; replay accepts every version in
/// `SUPPORTED_VERSIONS`.
const VERSION: u32 = 2;
const SUPPORTED_VERSIONS: [u32; 2] = [1, 2];
const HEADER_LEN: usize = 8;

const TAG_GRANT: u8 = 1;
const TAG_INTENT: u8 = 2;
const TAG_SETTLE: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;
const TAG_GRANT2: u8 = 6;
const TAG_INTENT2: u8 = 7;
const TAG_SNAPSHOT2: u8 = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the same
/// checksum `zip`/`png` use; implemented inline because the offline
/// workspace vendors no checksum crate.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One journal record. δ components of exactly zero encode as the
/// compact v1 tags, so pure ε-DP journals stay byte-identical across the
/// version bump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Record {
    /// Opens (or re-opens with a different total) the accounting epoch.
    Grant { total: f64, total_delta: f64 },
    /// Reserves `(eps, delta)` for debit `id` before any noise is drawn.
    Intent { id: u64, eps: f64, delta: f64 },
    /// Finalizes debit `id` — its noise has been (or is about to be,
    /// durably committed first) released.
    Settle { id: u64 },
    /// Refunds debit `id` — its noise was never released.
    Abort { id: u64 },
    /// Compaction summary: cumulative settled spend and debit count.
    Snapshot {
        settled: f64,
        settled_delta: f64,
        debits: u64,
    },
}

fn payload_len(tag: u8) -> Option<usize> {
    match tag {
        TAG_GRANT => Some(8),
        TAG_INTENT => Some(16),
        TAG_SETTLE | TAG_ABORT => Some(8),
        TAG_SNAPSHOT => Some(16),
        TAG_GRANT2 => Some(16),
        TAG_INTENT2 => Some(24),
        TAG_SNAPSHOT2 => Some(24),
        _ => None,
    }
}

impl Record {
    /// Encodes the record as a CRC-framed byte string.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + 24 + 4);
        match *self {
            Record::Grant { total, total_delta } => {
                if total_delta == 0.0 {
                    buf.push(TAG_GRANT);
                    buf.extend_from_slice(&total.to_bits().to_le_bytes());
                } else {
                    buf.push(TAG_GRANT2);
                    buf.extend_from_slice(&total.to_bits().to_le_bytes());
                    buf.extend_from_slice(&total_delta.to_bits().to_le_bytes());
                }
            }
            Record::Intent { id, eps, delta } => {
                if delta == 0.0 {
                    buf.push(TAG_INTENT);
                    buf.extend_from_slice(&id.to_le_bytes());
                    buf.extend_from_slice(&eps.to_bits().to_le_bytes());
                } else {
                    buf.push(TAG_INTENT2);
                    buf.extend_from_slice(&id.to_le_bytes());
                    buf.extend_from_slice(&eps.to_bits().to_le_bytes());
                    buf.extend_from_slice(&delta.to_bits().to_le_bytes());
                }
            }
            Record::Settle { id } => {
                buf.push(TAG_SETTLE);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            Record::Abort { id } => {
                buf.push(TAG_ABORT);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            Record::Snapshot {
                settled,
                settled_delta,
                debits,
            } => {
                if settled_delta == 0.0 {
                    buf.push(TAG_SNAPSHOT);
                    buf.extend_from_slice(&settled.to_bits().to_le_bytes());
                    buf.extend_from_slice(&debits.to_le_bytes());
                } else {
                    buf.push(TAG_SNAPSHOT2);
                    buf.extend_from_slice(&settled.to_bits().to_le_bytes());
                    buf.extend_from_slice(&settled_delta.to_bits().to_le_bytes());
                    buf.extend_from_slice(&debits.to_le_bytes());
                }
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
}

fn read_f64(bytes: &[u8]) -> f64 {
    f64::from_bits(read_u64(bytes))
}

/// Accounting state reconstructed from a journal.
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct Replay {
    /// Total ε of the last `Grant`, if any record was recovered.
    pub total: Option<f64>,
    /// Total δ of the last `Grant` (0 for a v1 grant).
    pub total_delta: f64,
    /// Cumulative settled ε spend.
    pub settled: f64,
    /// Cumulative settled δ spend.
    pub settled_delta: f64,
    /// Number of settled debits.
    pub debits: u64,
    /// Intents never settled nor aborted, as `(ε, δ)` — counted as spent
    /// by the ledger that opens on top of this replay.
    pub pending: HashMap<u64, (f64, f64)>,
    /// First unused intent id.
    pub next_id: u64,
    /// Whether damage *before* the final frame was found; the opening
    /// ledger must treat the budget as fully exhausted.
    pub corrupted: bool,
    /// Complete, CRC-valid records applied.
    pub records: usize,
}

/// Replays raw journal bytes. Never fails: damage degrades to either a
/// dropped torn tail or `corrupted = true` (see module docs).
pub(crate) fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut rep = Replay::default();
    if bytes.is_empty() {
        return rep;
    }
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
        rep.corrupted = true;
        return rep;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !SUPPORTED_VERSIONS.contains(&version) {
        rep.corrupted = true;
        return rep;
    }
    if bytes.len() == HEADER_LEN {
        // Compaction writes header + grant + snapshot atomically; a bare
        // header can only be truncation damage, and whatever history it
        // beheaded is unrecoverable.
        rep.corrupted = true;
        return rep;
    }
    // Only live-appended operation frames may be legitimately torn;
    // grant/snapshot frames land via atomic rename, so damage there is
    // damage to already-durable state (see module docs).
    let droppable = |tag: u8| matches!(tag, TAG_INTENT | TAG_INTENT2 | TAG_SETTLE | TAG_ABORT);
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        let tag = bytes[off];
        let Some(plen) = payload_len(tag) else {
            rep.corrupted = true;
            return rep;
        };
        let flen = 1 + plen + 4;
        if off + flen > bytes.len() {
            // Torn tail — drop the incomplete final op frame (safe: its
            // operation never took effect; see module docs).
            rep.corrupted = !droppable(tag);
            return rep;
        }
        let body = &bytes[off..off + 1 + plen];
        let stored = u32::from_le_bytes(
            bytes[off + 1 + plen..off + flen]
                .try_into()
                .expect("4 bytes"),
        );
        if stored != crc32(body) {
            if off + flen == bytes.len() && droppable(tag) {
                // Corrupt *final* op frame: indistinguishable from a
                // torn write of exactly frame length — drop it.
                return rep;
            }
            rep.corrupted = true;
            return rep;
        }
        let payload = &body[1..];
        match tag {
            TAG_GRANT => {
                rep.total = Some(read_f64(payload));
                rep.total_delta = 0.0;
                rep.settled = 0.0;
                rep.settled_delta = 0.0;
                rep.debits = 0;
                rep.pending.clear();
            }
            TAG_GRANT2 => {
                rep.total = Some(read_f64(payload));
                rep.total_delta = read_f64(&payload[8..]);
                rep.settled = 0.0;
                rep.settled_delta = 0.0;
                rep.debits = 0;
                rep.pending.clear();
            }
            TAG_INTENT => {
                let id = read_u64(payload);
                let eps = read_f64(&payload[8..]);
                rep.pending.insert(id, (eps, 0.0));
                rep.next_id = rep.next_id.max(id + 1);
            }
            TAG_INTENT2 => {
                let id = read_u64(payload);
                let eps = read_f64(&payload[8..]);
                let delta = read_f64(&payload[16..]);
                rep.pending.insert(id, (eps, delta));
                rep.next_id = rep.next_id.max(id + 1);
            }
            TAG_SETTLE => {
                if let Some((eps, delta)) = rep.pending.remove(&read_u64(payload)) {
                    rep.settled += eps;
                    rep.settled_delta += delta;
                    rep.debits += 1;
                }
            }
            TAG_ABORT => {
                rep.pending.remove(&read_u64(payload));
            }
            TAG_SNAPSHOT => {
                rep.settled = read_f64(payload);
                rep.settled_delta = 0.0;
                rep.debits = read_u64(&payload[8..]);
            }
            TAG_SNAPSHOT2 => {
                rep.settled = read_f64(payload);
                rep.settled_delta = read_f64(&payload[8..]);
                rep.debits = read_u64(&payload[16..]);
            }
            _ => unreachable!("payload_len filtered unknown tags"),
        }
        rep.records += 1;
        off += flen;
    }
    rep
}

/// An open, append-only journal file.
#[derive(Debug)]
pub(crate) struct LedgerJournal {
    file: File,
}

impl LedgerJournal {
    /// Reads and replays `path` (a missing file replays as empty).
    pub(crate) fn replay_file(path: &Path) -> io::Result<Replay> {
        match fs::read(path) {
            Ok(bytes) => Ok(replay_bytes(&bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Replay::default()),
            Err(e) => Err(e),
        }
    }

    /// Atomically rewrites `path` as a compacted journal (header, one
    /// `Grant`, one `Snapshot`) and reopens it for appending. The
    /// rewrite goes through a temp file + rename so a crash mid-compact
    /// leaves either the old or the new journal, never a hybrid.
    pub(crate) fn create_compacted(
        path: &Path,
        total: f64,
        total_delta: f64,
        settled: f64,
        settled_delta: f64,
        debits: u64,
    ) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("epsj.tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(&MAGIC);
            buf.extend_from_slice(&VERSION.to_le_bytes());
            buf.extend_from_slice(&Record::Grant { total, total_delta }.encode());
            buf.extend_from_slice(
                &Record::Snapshot {
                    settled,
                    settled_delta,
                    debits,
                }
                .encode(),
            );
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Make the rename durable (best effort — some filesystems do
        // not support fsync on directories).
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file })
    }

    /// Appends one record and fsyncs it. The caller must not let the
    /// recorded operation take effect until this returns `Ok` — that
    /// ordering is what makes torn-tail dropping safe on replay.
    pub(crate) fn append(&mut self, record: &Record) -> io::Result<()> {
        let frame = record.encode();
        if lrm_testing::triggered("dp::journal::torn_append") {
            // Injected torn write: half a frame reaches the disk and the
            // append reports failure, exactly like a crash mid-write.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_data();
            return Err(io::Error::other("injected torn journal append"));
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_bytes_v(version: u32, records: &[Record]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        for r in records {
            buf.extend_from_slice(&r.encode());
        }
        buf
    }

    fn journal_bytes(records: &[Record]) -> Vec<u8> {
        journal_bytes_v(VERSION, records)
    }

    fn grant(total: f64) -> Record {
        Record::Grant {
            total,
            total_delta: 0.0,
        }
    }

    fn intent(id: u64, eps: f64) -> Record {
        Record::Intent {
            id,
            eps,
            delta: 0.0,
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_a_grant_intent_settle_sequence() {
        let bytes = journal_bytes(&[
            grant(2.0),
            intent(0, 0.5),
            Record::Settle { id: 0 },
            intent(1, 0.25),
        ]);
        let rep = replay_bytes(&bytes);
        assert!(!rep.corrupted);
        assert_eq!(rep.total, Some(2.0));
        assert_eq!(rep.settled, 0.5);
        assert_eq!(rep.debits, 1);
        assert_eq!(rep.pending.get(&1), Some(&(0.25, 0.0)));
        assert_eq!(rep.next_id, 2);
        assert_eq!(rep.records, 4);
    }

    #[test]
    fn abort_refunds_a_pending_intent() {
        let bytes = journal_bytes(&[grant(1.0), intent(0, 0.5), Record::Abort { id: 0 }]);
        let rep = replay_bytes(&bytes);
        assert!(rep.pending.is_empty());
        assert_eq!(rep.settled, 0.0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut bytes = journal_bytes(&[grant(1.0), intent(0, 0.5), Record::Settle { id: 0 }]);
        // Tear the final settle: its intent must fall back to pending.
        bytes.truncate(bytes.len() - 3);
        let rep = replay_bytes(&bytes);
        assert!(!rep.corrupted);
        assert_eq!(rep.settled, 0.0);
        assert_eq!(rep.pending.get(&0), Some(&(0.5, 0.0)));
    }

    #[test]
    fn mid_file_bit_flip_is_fatal() {
        let mut bytes = journal_bytes(&[grant(1.0), intent(0, 0.5)]);
        // Flip a bit inside the Grant payload (not the final frame).
        bytes[HEADER_LEN + 3] ^= 0x10;
        let rep = replay_bytes(&bytes);
        assert!(rep.corrupted);
    }

    #[test]
    fn corrupt_final_frame_is_dropped_like_a_torn_write() {
        let mut bytes = journal_bytes(&[grant(1.0), intent(0, 0.5)]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // damage the final frame's CRC
        let rep = replay_bytes(&bytes);
        assert!(!rep.corrupted);
        assert_eq!(rep.total, Some(1.0));
        assert!(rep.pending.is_empty());
    }

    #[test]
    fn bad_header_or_unknown_tag_is_fatal() {
        let rep = replay_bytes(b"NOPE\x01\x00\x00\x00");
        assert!(rep.corrupted);

        let mut bytes = journal_bytes(&[grant(1.0)]);
        bytes.push(0xEE); // unknown tag with nothing after it
                          // An unknown tag cannot be framed, so it is fatal even at the tail.
        assert!(replay_bytes(&bytes).corrupted);
    }

    #[test]
    fn snapshot_resets_settled_spend() {
        let bytes = journal_bytes(&[
            grant(4.0),
            Record::Snapshot {
                settled: 1.5,
                settled_delta: 0.0,
                debits: 3,
            },
            intent(7, 0.5),
            Record::Settle { id: 7 },
        ]);
        let rep = replay_bytes(&bytes);
        assert_eq!(rep.settled, 2.0);
        assert_eq!(rep.debits, 4);
        assert_eq!(rep.next_id, 8);
    }

    #[test]
    fn torn_snapshot_or_grant_tail_is_fatal_not_dropped() {
        // A compacted journal is header · Grant · Snapshot; the snapshot
        // carries all historical spend, so tearing it must exhaust the
        // ledger rather than silently refund everything.
        let bytes = journal_bytes(&[
            grant(1.0),
            Record::Snapshot {
                settled: 0.75,
                settled_delta: 0.0,
                debits: 3,
            },
        ]);
        for cut in 1..=3 {
            let mut torn = bytes.clone();
            torn.truncate(bytes.len() - cut);
            assert!(
                replay_bytes(&torn).corrupted,
                "torn snapshot ({cut} bytes) must be fatal"
            );
        }
        // Same for a grant alone (torn mid-frame).
        let mut torn = journal_bytes(&[grant(1.0)]);
        torn.truncate(torn.len() - 2);
        assert!(replay_bytes(&torn).corrupted);
        // A CRC-damaged final snapshot is equally fatal.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(replay_bytes(&flipped).corrupted);
    }

    #[test]
    fn v2_frames_round_trip_delta_spend() {
        let bytes = journal_bytes(&[
            Record::Grant {
                total: 2.0,
                total_delta: 1e-5,
            },
            Record::Intent {
                id: 0,
                eps: 0.5,
                delta: 4e-6,
            },
            Record::Settle { id: 0 },
            Record::Intent {
                id: 1,
                eps: 0.25,
                delta: 2e-6,
            },
        ]);
        let rep = replay_bytes(&bytes);
        assert!(!rep.corrupted);
        assert_eq!(rep.total, Some(2.0));
        assert_eq!(rep.total_delta, 1e-5);
        assert_eq!(rep.settled, 0.5);
        assert_eq!(rep.settled_delta, 4e-6);
        assert_eq!(rep.pending.get(&1), Some(&(0.25, 2e-6)));
    }

    #[test]
    fn v2_snapshot_round_trips() {
        let bytes = journal_bytes(&[
            Record::Grant {
                total: 4.0,
                total_delta: 1e-4,
            },
            Record::Snapshot {
                settled: 1.5,
                settled_delta: 3e-5,
                debits: 3,
            },
            Record::Intent {
                id: 7,
                eps: 0.5,
                delta: 1e-5,
            },
            Record::Settle { id: 7 },
        ]);
        let rep = replay_bytes(&bytes);
        assert_eq!(rep.settled, 2.0);
        assert_eq!(rep.settled_delta, 4e-5);
        assert_eq!(rep.debits, 4);
    }

    #[test]
    fn zero_delta_encodes_as_compact_v1_tags() {
        // Byte-compatibility: a pure ε-DP ledger's journal must be
        // identical to what the v1 writer produced (modulo the header
        // version), so tag bytes stay in the v1 set.
        assert_eq!(grant(1.0).encode()[0], TAG_GRANT);
        assert_eq!(intent(0, 0.5).encode()[0], TAG_INTENT);
        assert_eq!(
            Record::Snapshot {
                settled: 1.0,
                settled_delta: 0.0,
                debits: 1
            }
            .encode()[0],
            TAG_SNAPSHOT
        );
        // And positive δ switches to the v2 tags.
        assert_eq!(
            Record::Grant {
                total: 1.0,
                total_delta: 1e-6
            }
            .encode()[0],
            TAG_GRANT2
        );
        assert_eq!(
            Record::Intent {
                id: 0,
                eps: 0.5,
                delta: 1e-6
            }
            .encode()[0],
            TAG_INTENT2
        );
        assert_eq!(
            Record::Snapshot {
                settled: 1.0,
                settled_delta: 1e-6,
                debits: 1
            }
            .encode()[0],
            TAG_SNAPSHOT2
        );
    }

    #[test]
    fn v1_header_still_replays() {
        // A journal written by the previous release: version 1, v1 tags
        // only. It must replay with δ columns at zero, not corrupt.
        let bytes = journal_bytes_v(1, &[grant(1.0), intent(0, 0.5), Record::Settle { id: 0 }]);
        let rep = replay_bytes(&bytes);
        assert!(!rep.corrupted);
        assert_eq!(rep.total, Some(1.0));
        assert_eq!(rep.total_delta, 0.0);
        assert_eq!(rep.settled, 0.5);
        assert_eq!(rep.settled_delta, 0.0);
    }

    #[test]
    fn future_version_is_fatal() {
        let bytes = journal_bytes_v(3, &[grant(1.0)]);
        assert!(replay_bytes(&bytes).corrupted);
    }

    #[test]
    fn torn_delta_intent_is_dropped_and_never_refunds_delta() {
        // The δ-frame crash-safety property the durable ledger relies on:
        // a torn Intent2 at the tail is dropped (it never took effect),
        // while a torn *Settle* after a δ intent leaves the intent
        // pending — δ stays reserved, never refunded.
        let mut torn_intent = journal_bytes(&[
            Record::Grant {
                total: 1.0,
                total_delta: 1e-5,
            },
            Record::Intent {
                id: 0,
                eps: 0.5,
                delta: 4e-6,
            },
        ]);
        torn_intent.truncate(torn_intent.len() - 5);
        let rep = replay_bytes(&torn_intent);
        assert!(!rep.corrupted);
        assert!(rep.pending.is_empty());

        let mut torn_settle = journal_bytes(&[
            Record::Grant {
                total: 1.0,
                total_delta: 1e-5,
            },
            Record::Intent {
                id: 0,
                eps: 0.5,
                delta: 4e-6,
            },
            Record::Settle { id: 0 },
        ]);
        torn_settle.truncate(torn_settle.len() - 3);
        let rep = replay_bytes(&torn_settle);
        assert!(!rep.corrupted);
        assert_eq!(rep.settled_delta, 0.0);
        assert_eq!(rep.pending.get(&0), Some(&(0.5, 4e-6)));
    }

    #[test]
    fn torn_grant2_or_snapshot2_is_fatal() {
        let bytes = journal_bytes(&[
            Record::Grant {
                total: 1.0,
                total_delta: 1e-5,
            },
            Record::Snapshot {
                settled: 0.75,
                settled_delta: 3e-6,
                debits: 3,
            },
        ]);
        for cut in 1..=5 {
            let mut torn = bytes.clone();
            torn.truncate(bytes.len() - cut);
            assert!(
                replay_bytes(&torn).corrupted,
                "torn Snapshot2 ({cut} bytes) must be fatal"
            );
        }
        let mut torn = journal_bytes(&[Record::Grant {
            total: 1.0,
            total_delta: 1e-5,
        }]);
        torn.truncate(torn.len() - 2);
        assert!(replay_bytes(&torn).corrupted);
    }

    #[test]
    fn bare_header_is_fatal() {
        // Compaction never leaves a header with no frames behind; only
        // truncation damage can.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        assert!(replay_bytes(&bytes).corrupted);
    }

    #[test]
    fn empty_and_missing_files_replay_as_fresh() {
        assert_eq!(replay_bytes(&[]), Replay::default());
        let rep =
            LedgerJournal::replay_file(Path::new("/nonexistent/lrm_journal_test.epsj")).unwrap();
        assert_eq!(rep, Replay::default());
    }
}
