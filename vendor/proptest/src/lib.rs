//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the subset of its API this workspace
//! uses: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric
//! range strategies, tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the fixed
//!   per-test seed; re-running reproduces it exactly.
//! * **Deterministic.** Each generated test derives its RNG seed from the
//!   test function's name (FNV-1a), so runs are reproducible bit-for-bit —
//!   consistent with the workspace-wide reproducibility contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted through `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`-family macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving value generation.
pub type TestRng = StdRng;

/// Derives the per-test RNG from the test's name (FNV-1a over the bytes).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in test_name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values (the real crate's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range must be non-empty");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws random inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            n in 1usize..5,
            xs in collection::vec(-1.0f64..1.0, 2..6),
            y in 0.5f64..2.0,
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..4).prop_flat_map(|n| collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn map_and_tuples(p in (0usize..3, 0usize..3).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 4);
        }

        #[test]
        fn early_return_ok(n in 0usize..10) {
            if n % 2 == 0 {
                return Ok(());
            }
            prop_assert!(n % 2 == 1);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(4);
            let mut rng = crate::test_rng("failing_case");
            for case in 0..config.cases {
                let n = Strategy::new_value(&(0usize..10), &mut rng);
                let r: Result<(), TestCaseError> = (|| {
                    prop_assert!(n > 100, "n was {n}");
                    Ok(())
                })();
                if let Err(e) = r {
                    panic!("case {case}: {e}");
                }
            }
        });
        assert!(result.is_err());
    }
}
