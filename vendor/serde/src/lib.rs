//! Offline facade for the [`serde`](https://serde.rs) derive surface used by
//! this workspace. The real serde is unavailable (no registry access), and the
//! workspace only uses `#[derive(Serialize)]` as a marker on result-record
//! types — all actual output (CSV, tables) is hand-rolled. The traits are
//! empty markers and the derives expand to nothing; swap this vendored crate
//! for the real dependency once the build environment has network access.

/// Marker trait; the paired derive macro expands to nothing.
pub trait Serialize {}

/// Marker trait; the paired derive macro expands to nothing.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
