//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset of its API this workspace's
//! `benches/` use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! times `sample_size` batches and reports min/mean wall-clock per iteration.
//! Numbers are indicative, not rigorous — sufficient for spotting order-of-
//! magnitude regressions until the real criterion can be restored from a
//! registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A benchmark identifier, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time recorded by the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, running warm-up iterations first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least one call, at most ~50ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters == 0
            || (warmup_start.elapsed() < Duration::from_millis(50) && warmup_iters < 1000)
        {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

fn run_one(full_id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => {
            println!(
                "bench: {full_id:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({samples} samples)"
            );
        }
        None => println!("bench: {full_id:<50} (no iter() call)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parses command-line arguments (accepted and ignored: cargo-bench
    /// passes `--bench`; filters are not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, 20, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 4, "warm-up + samples should call the routine");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("svd", 64).id, "svd/64");
        assert_eq!(BenchmarkId::from_parameter("LRM").id, "LRM");
    }
}
