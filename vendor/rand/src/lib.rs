//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the subset of the `rand` 0.8 API that the `lrm`
//! workspace uses:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`;
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` (blanket-implemented for every
//!   `RngCore`);
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64.
//!
//! The stream produced by `StdRng` is **not** bit-compatible with the real
//! `rand::rngs::StdRng` (which is ChaCha12); it is merely deterministic,
//! well-mixed, and stable across runs, which is all the workspace's
//! reproducibility contract requires.

/// The core of a random number generator: a source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the `Standard`
/// distribution of the real crate, folded into a helper trait).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types drawable uniformly from a half-open or inclusive range.
///
/// Mirrors the real crate's `SampleUniform`: a single *blanket* impl of
/// [`SampleRange`] over this trait is what lets type inference unify an
/// unsuffixed literal range (`0.75..1.25`) with the use site's type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty float range");
                let u = <$t>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Floating round-off can land exactly on `hi`; fold back to
                // the nearest in-range value (folding to `lo` would over-
                // weight the endpoint some callers treat as singular).
                if v >= hi { hi.next_down().max(lo) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty float range");
                let u = <$t>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = hi as i128 - lo as i128 + 1;
                let draw = ((rng.next_u64() as u128) % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for the real
    /// ChaCha12-based `StdRng`; same API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=4u64);
            assert!(j <= 4);
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
