//! No-op derive macros backing the vendored `serde` facade.
//!
//! The workspace only *derives* `Serialize` (as a forward-compatible marker
//! on result-record types); nothing actually serializes through serde — CSV
//! and table output are hand-rolled. The derives therefore expand to nothing,
//! which keeps `#[derive(Serialize)]` compiling without pulling `syn`/`quote`
//! (unavailable offline).

use proc_macro::TokenStream;

/// Expands to nothing; accepted so `#[derive(Serialize)]` compiles.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted so `#[derive(Deserialize)]` compiles.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
