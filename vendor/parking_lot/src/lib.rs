//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`. Only the `Mutex`/`RwLock` API surface the
//! `lrm` workspace uses is provided. The signature difference that matters —
//! `lock()` returning the guard directly instead of a poisoning `Result` —
//! is preserved by recovering from poisoning internally.

use std::fmt;
use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning (a panic while
    /// the lock was held) is ignored, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
