//! Shape tests: the qualitative claims of the paper's evaluation section,
//! asserted at desk scale. These are the "does the reproduction reproduce"
//! tests — who wins, by roughly what factor, and where crossovers fall.

use lrm::core::baselines::{MatrixMechanism, MatrixMechanismConfig};
use lrm::core::bounds;
use lrm::core::mechanism::Mechanism;
use lrm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Section 2.2 / Figs. 4–6: the Matrix Mechanism never meaningfully beats
/// the naive noise-on-data baseline.
#[test]
fn mm_never_beats_nod() {
    for seed in 0..4 {
        let w = WDiscrete::default()
            .generate(10, 14, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let mm = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
        let nod = NoiseOnData::compile(&w);
        let e = eps(0.1);
        assert!(
            mm.expected_error(e, None) >= 0.9 * nod.expected_error(e, None),
            "seed {seed}: MM {} beat NOD {}",
            mm.expected_error(e, None),
            nod.expected_error(e, None)
        );
    }
}

/// Figs. 6/8/9: on low-rank (WRelated) workloads LRM dominates every
/// baseline by a large factor.
#[test]
fn lrm_dominates_on_low_rank_workloads() {
    let gen = WRelated { base_queries: 4 };
    let w = gen.generate(48, 96, &mut StdRng::seed_from_u64(7)).unwrap();
    let e = eps(0.1);
    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
    let lm = NoiseOnData::compile(&w);
    let wm = WaveletMechanism::compile(&w);
    let hm = HierarchicalMechanism::compile(&w);
    let lrm_err = lrm.expected_error(e, None);
    for (name, err) in [
        ("LM", lm.expected_error(e, None)),
        ("WM", wm.expected_error(e, None)),
        ("HM", hm.expected_error(e, None)),
    ] {
        assert!(
            err > 3.0 * lrm_err,
            "{name} ({err}) not well above LRM ({lrm_err})"
        );
    }
}

/// Fig. 5 / Section 6.2: on range workloads over large domains the
/// range-specialized mechanisms (WM, HM) beat naive LM, and LRM beats
/// or matches them.
#[test]
fn range_queries_large_domain_ordering() {
    let w = WRange
        .generate(32, 1024, &mut StdRng::seed_from_u64(8))
        .unwrap();
    let e = eps(0.1);
    let lm = NoiseOnData::compile(&w).expected_error(e, None);
    let wm = WaveletMechanism::compile(&w).expected_error(e, None);
    let hm = HierarchicalMechanism::compile(&w).expected_error(e, None);
    assert!(wm < lm, "WM {wm} not below LM {lm} at n=1024");
    assert!(hm < lm, "HM {hm} not below LM {lm} at n=1024");

    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default())
        .unwrap()
        .expected_error(e, None);
    assert!(
        lrm < 1.5 * wm.min(hm),
        "LRM {lrm} not competitive with WM {wm}/HM {hm}"
    );
}

/// Fig. 4 (small n): on dense ±1 workloads over small domains, naive LM is
/// the best baseline (WM/HM pay their log-factor overhead for nothing).
#[test]
fn wdiscrete_small_domain_lm_wins_among_baselines() {
    let w = WDiscrete::default()
        .generate(24, 32, &mut StdRng::seed_from_u64(9))
        .unwrap();
    let e = eps(0.1);
    let lm = NoiseOnData::compile(&w).expected_error(e, None);
    let wm = WaveletMechanism::compile(&w).expected_error(e, None);
    let hm = HierarchicalMechanism::compile(&w).expected_error(e, None);
    assert!(
        lm < wm,
        "LM {lm} not below WM {wm} on small dense workloads"
    );
    assert!(
        lm < hm,
        "LM {lm} not below HM {hm} on small dense workloads"
    );
}

/// Lemma 3: the optimizer's noise error never exceeds the SVD-construction
/// upper bound (it starts there).
#[test]
fn lrm_error_within_lemma3_bound() {
    for seed in 0..3 {
        let w = WRange
            .generate(12, 20, &mut StdRng::seed_from_u64(20 + seed))
            .unwrap();
        let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let svals = w.singular_values();
        let e = 0.5;
        let upper = bounds::lemma3_upper_bound(&svals, e);
        let got = lrm.decomposition().expected_noise_error(e);
        assert!(
            got <= upper * (1.0 + 1e-6),
            "seed {seed}: LRM {got} above Lemma 3 bound {upper}"
        );
    }
}

/// Fig. 2: LRM's accuracy is insensitive to γ across six orders of
/// magnitude (while the structural term stays negligible).
#[test]
fn gamma_insensitivity() {
    let w = WRange
        .generate(16, 32, &mut StdRng::seed_from_u64(30))
        .unwrap();
    let data: Vec<f64> = (0..32).map(|i| 1000.0 + (i * 37 % 101) as f64).collect();
    let e = eps(0.1);
    let mut errors = Vec::new();
    for gamma in [1e-4, 1e-2, 1.0] {
        let cfg = DecompositionConfig {
            gamma,
            ..DecompositionConfig::default()
        };
        let lrm = LowRankMechanism::compile(&w, &cfg).unwrap();
        errors.push(lrm.expected_error(e, Some(&data)));
    }
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 3.0,
        "γ sensitivity too strong: errors {errors:?}"
    );
}

/// Fig. 3: r below rank(W) hurts badly; r ≥ 1.2·rank(W) is flat.
#[test]
fn rank_ratio_sensitivity() {
    let gen = WRelated { base_queries: 6 };
    let w = gen
        .generate(24, 40, &mut StdRng::seed_from_u64(31))
        .unwrap();
    let data: Vec<f64> = (0..40).map(|i| 500.0 + i as f64).collect();
    let e = eps(0.1);
    let err_for = |ratio: f64| {
        let cfg = DecompositionConfig {
            target_rank: lrm::core::decomposition::TargetRank::RatioOfRank(ratio),
            ..DecompositionConfig::default()
        };
        LowRankMechanism::compile(&w, &cfg)
            .unwrap()
            .expected_error(e, Some(&data))
    };
    let undersized = err_for(0.5); // r = 3 < rank 6: structural error bites
    let matched = err_for(1.2);
    let oversized = err_for(2.5);
    assert!(
        undersized > 3.0 * matched,
        "undersized r not clearly worse: {undersized} vs {matched}"
    );
    assert!(
        oversized < 2.0 * matched,
        "oversized r unexpectedly bad: {oversized} vs {matched}"
    );
}

/// Intro example: LRM beats both naive baselines on the paper's own
/// running example.
#[test]
fn intro_example_ordering() {
    let w = Workload::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0],
        &[1.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 1.0],
    ])
    .unwrap();
    let e = eps(1.0);
    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default())
        .unwrap()
        .expected_error(e, None);
    let nod = NoiseOnData::compile(&w).expected_error(e, None); // 16
    let nor = NoiseOnResults::compile(&w).expected_error(e, None); // 24
    assert!(lrm < nod, "LRM {lrm} not below NOD {nod}");
    assert!(lrm < nor, "LRM {lrm} not below NOR {nor}");
}
