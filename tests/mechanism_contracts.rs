//! Cross-crate integration tests: every mechanism honours the common
//! contract (shape, unbiasedness, closed-form error, ε-scaling).

use lrm::core::baselines::{MatrixMechanism, MatrixMechanismConfig};
use lrm::core::mechanism::Mechanism;
use lrm::dp::rng::derive_rng;
use lrm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn all_mechanisms(w: &Workload) -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(NoiseOnData::compile(w)),
        Box::new(NoiseOnResults::compile(w)),
        Box::new(WaveletMechanism::compile(w)),
        Box::new(HierarchicalMechanism::compile(w)),
        Box::new(MatrixMechanism::compile(w, &MatrixMechanismConfig::default()).unwrap()),
        Box::new(LowRankMechanism::compile(w, &DecompositionConfig::default()).unwrap()),
    ]
}

#[test]
fn every_mechanism_answers_with_correct_shape() {
    let w = WRange
        .generate(7, 12, &mut StdRng::seed_from_u64(1))
        .unwrap();
    let x: Vec<f64> = (0..12).map(|i| (i * i % 19) as f64).collect();
    for mech in all_mechanisms(&w) {
        let y = mech
            .answer(&x, eps(1.0), &mut derive_rng(1, 1))
            .unwrap_or_else(|e| panic!("{} failed: {e}", mech.name()));
        assert_eq!(y.len(), 7, "{}", mech.name());
        assert!(y.iter().all(|v| v.is_finite()), "{}", mech.name());
    }
}

#[test]
fn every_mechanism_is_unbiased() {
    // Mean answer over many trials approaches the exact answer (all six
    // mechanisms publish exact + zero-mean linear noise, modulo LRM's
    // deterministic γ-residual which the tolerance absorbs).
    let w = WRange
        .generate(5, 8, &mut StdRng::seed_from_u64(2))
        .unwrap();
    let x: Vec<f64> = (0..8).map(|i| 10.0 + i as f64).collect();
    let truth = w.answer(&x).unwrap();
    let e = eps(1.0);
    let trials = 1500;
    for mech in all_mechanisms(&w) {
        let mut mean = vec![0.0; truth.len()];
        for t in 0..trials {
            let y = mech.answer(&x, e, &mut derive_rng(3, t)).unwrap();
            for (m, v) in mean.iter_mut().zip(y.iter()) {
                *m += v / trials as f64;
            }
        }
        for (i, (m, t)) in mean.iter().zip(truth.iter()).enumerate() {
            let tol = 0.35 * (mech.expected_error(e, Some(&x)) / truth.len() as f64).sqrt()
                / (trials as f64).sqrt()
                * 3.0
                + 0.5; // γ-residual slack for LRM
            assert!(
                (m - t).abs() < tol.max(1.0),
                "{} biased on query {i}: mean {m} vs truth {t}",
                mech.name()
            );
        }
    }
}

#[test]
fn analytic_error_matches_monte_carlo_for_all_mechanisms() {
    let w = WRange
        .generate(6, 16, &mut StdRng::seed_from_u64(3))
        .unwrap();
    let x: Vec<f64> = (0..16).map(|i| ((i * 5) % 13) as f64).collect();
    let truth = w.answer(&x).unwrap();
    let e = eps(0.5);
    let trials = 2500;
    for mech in all_mechanisms(&w) {
        let mut sq = 0.0;
        for t in 0..trials {
            let y = mech.answer(&x, e, &mut derive_rng(4, t)).unwrap();
            sq += y
                .iter()
                .zip(truth.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, Some(&x));
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "{}: empirical {empirical} vs analytic {analytic} (rel {rel})",
            mech.name()
        );
    }
}

#[test]
fn error_scales_quadratically_in_inverse_epsilon() {
    // Section 6: "the squared error incurred by all the methods is
    // quadratic in 1/ε". (LRM's data term is ε-independent, so exclude
    // the structural residual by passing x = None.)
    let w = WRange
        .generate(6, 10, &mut StdRng::seed_from_u64(4))
        .unwrap();
    for mech in all_mechanisms(&w) {
        let e1 = mech.expected_error(eps(1.0), None);
        let e2 = mech.expected_error(eps(0.1), None);
        assert!(
            (e2 / e1 - 100.0).abs() < 1e-6,
            "{}: ratio {}",
            mech.name(),
            e2 / e1
        );
    }
}

#[test]
fn mechanisms_reject_malformed_databases() {
    let w = WRange
        .generate(4, 9, &mut StdRng::seed_from_u64(5))
        .unwrap();
    for mech in all_mechanisms(&w) {
        let mut rng = derive_rng(6, 0);
        assert!(
            mech.answer(&[0.0; 8], eps(1.0), &mut rng).is_err(),
            "{} accepted a short database",
            mech.name()
        );
        assert!(
            mech.answer(&[f64::INFINITY; 9], eps(1.0), &mut rng)
                .is_err(),
            "{} accepted non-finite counts",
            mech.name()
        );
    }
}

#[test]
fn identical_seeds_give_identical_answers() {
    let w = WRange
        .generate(4, 8, &mut StdRng::seed_from_u64(6))
        .unwrap();
    let x = vec![5.0; 8];
    for mech in all_mechanisms(&w) {
        let a = mech.answer(&x, eps(1.0), &mut derive_rng(9, 9)).unwrap();
        let b = mech.answer(&x, eps(1.0), &mut derive_rng(9, 9)).unwrap();
        assert_eq!(a, b, "{} not deterministic under a fixed seed", mech.name());
    }
}
