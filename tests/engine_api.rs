//! Integration tests of the engine surface through the `lrm` facade:
//! budget-tracked sessions, sequential-composition accounting, the
//! compiled-strategy cache, and `compile_best`.

use lrm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn range_workload(m: usize, n: usize, seed: u64) -> Workload {
    WRange
        .generate(m, n, &mut StdRng::seed_from_u64(seed))
        .unwrap()
}

#[test]
fn session_exhausts_with_a_typed_error() {
    let engine = Engine::builder().build();
    let w = range_workload(6, 12, 1);
    let compiled = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
    let mut session = compiled.session(eps(1.0));
    let data = vec![5.0; 12];
    let mut rng = StdRng::seed_from_u64(9);

    session.answer(&data, eps(0.7), &mut rng).unwrap();
    let err = session.answer(&data, eps(0.7), &mut rng).unwrap_err();
    match err {
        EngineError::Budget(BudgetError::Exhausted {
            requested,
            remaining,
        }) => {
            assert_eq!(requested, 0.7);
            assert!((remaining - 0.3).abs() < 1e-12);
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    // The refused release did not touch the ledger…
    assert!((session.remaining() - 0.3).abs() < 1e-12);
    assert_eq!(session.ledger().debits(), 1);
    // …and a fitting release still succeeds.
    let release = session.answer(&data, eps(0.3), &mut rng).unwrap();
    assert!(session.is_exhausted());
    assert!(release.eps_remaining < 1e-12);
}

#[test]
fn sequential_composition_accounting() {
    // Two answers at ε/2 leave the ledger exactly where one answer at ε
    // does.
    let engine = Engine::builder().build();
    let w = range_workload(4, 8, 2);
    let compiled = engine.compile_default(&w, MechanismKind::Wavelet).unwrap();
    let data = vec![1.0; 8];
    let mut rng = StdRng::seed_from_u64(3);

    let mut split = compiled.session(eps(1.0));
    let half = eps(1.0).split(2).unwrap();
    split.answer(&data, half, &mut rng).unwrap();
    split.answer(&data, half, &mut rng).unwrap();

    let mut whole = compiled.session(eps(1.0));
    whole.answer(&data, eps(1.0), &mut rng).unwrap();

    assert_eq!(split.ledger().spent(), whole.ledger().spent());
    assert_eq!(split.ledger().remaining(), whole.ledger().remaining());
    assert!(split.is_exhausted() && whole.is_exhausted());
    // Both refuse any further spend.
    assert!(split.answer(&data, half, &mut rng).is_err());
    assert!(whole.answer(&data, half, &mut rng).is_err());
}

#[test]
fn batch_answers_carry_their_accounting() {
    let engine = Engine::builder().build();
    let w = range_workload(5, 10, 3);
    let compiled = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
    let mut session = compiled.session(eps(2.0));
    let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
    let mut rng = StdRng::seed_from_u64(4);

    let release = session.answer(&data, eps(0.5), &mut rng).unwrap();
    assert_eq!(release.answers.len(), 5);
    assert_eq!(release.eps_spent.value(), 0.5);
    assert!((release.eps_remaining - 1.5).abs() < 1e-12);
    assert_eq!(release.mechanism, "LRM");
    assert!(release.expected_avg_error > 0.0);
    // The quoted expected error matches the mechanism's closed form.
    let direct = compiled.expected_average_error(eps(0.5), Some(&data));
    assert_eq!(release.expected_avg_error, direct);
}

#[test]
fn cache_hits_by_fingerprint_equality() {
    let engine = Engine::builder().build();
    // Two structurally identical workloads (equal fingerprints) and one
    // different workload.
    let w1 = range_workload(8, 16, 5);
    let w2 = range_workload(8, 16, 5);
    let other = range_workload(8, 16, 6);
    assert_eq!(w1.fingerprint(), w2.fingerprint());
    assert_ne!(w1.fingerprint(), other.fingerprint());

    let first = engine.compile_default(&w1, MechanismKind::Lrm).unwrap();
    assert_eq!(first.meta().cache, CacheOutcome::Miss);

    // Same content through a *different* Workload value: still a hit, and
    // the hit performs no decomposition work (the hit counter moves, the
    // miss counter does not).
    let hit = engine.compile_default(&w2, MechanismKind::Lrm).unwrap();
    assert_eq!(hit.meta().cache, CacheOutcome::MemoryHit);
    let stats = engine.cache_stats();
    assert_eq!((stats.misses, stats.memory_hits), (1, 1));

    // Different content: never *served* from the cache. The similarity
    // index may seed the solver from the cached neighbor (WarmStart),
    // but the strategy search still runs in full — what is ruled out is
    // a memory hit.
    let miss = engine.compile_default(&other, MechanismKind::Lrm).unwrap();
    assert!(matches!(
        miss.meta().cache,
        CacheOutcome::Miss | CacheOutcome::WarmStart
    ));
    let stats = engine.cache_stats();
    assert_eq!(stats.misses + stats.warm_hits, 2);
    assert_eq!(stats.memory_hits, 1);

    // Cached strategies answer identically to the original compile.
    let x: Vec<f64> = (0..16).map(|i| (i * 3) as f64).collect();
    let mut r1 = StdRng::seed_from_u64(7);
    let mut r2 = StdRng::seed_from_u64(7);
    let a = first.answer(&x, eps(1.0), &mut r1).unwrap();
    let b = hit.answer(&x, eps(1.0), &mut r2).unwrap();
    assert_eq!(a, b);
}

#[test]
fn compile_best_never_worse_than_laplace() {
    let engine = Engine::builder().reference_epsilon(eps(0.1)).build();
    for (m, n, seed) in [(6, 8, 10), (12, 32, 11), (16, 64, 12)] {
        let w = range_workload(m, n, seed);
        let best = engine.compile_best_default(&w).unwrap();
        let lm = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert!(
            best.meta().expected_avg_error <= lm.meta().expected_avg_error + 1e-12,
            "compile_best ({}) worse than Laplace on {m}x{n}",
            best.meta().label
        );
    }
}

#[test]
fn engine_error_exposes_sources() {
    use std::error::Error as _;
    let engine = Engine::builder().build();
    let w = range_workload(4, 8, 13);
    let compiled = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
    let mut session = compiled.session(eps(0.1));
    let mut rng = StdRng::seed_from_u64(1);

    // Budget failure chains to BudgetError.
    let budget_err = session.answer(&[0.0; 8], eps(1.0), &mut rng).unwrap_err();
    assert!(budget_err.source().is_some());
    assert!(budget_err.to_string().contains("exhausted"));

    // Core failure (wrong domain) chains to CoreError.
    let core_err = session.answer(&[0.0; 7], eps(0.05), &mut rng).unwrap_err();
    match &core_err {
        EngineError::Core(CoreError::DomainMismatch { expected, got }) => {
            assert_eq!((*expected, *got), (8, 7));
        }
        other => panic!("expected domain mismatch, got {other:?}"),
    }
    // A failed release must not debit the ledger.
    assert!((session.remaining() - 0.1).abs() < 1e-12);
}
