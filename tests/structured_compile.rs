//! Acceptance test for the structure-aware operator refactor: a prefix
//! workload at n = 4096 compiles end-to-end through
//! `Engine::compile(MechanismKind::Lrm)` **without ever materializing the
//! dense `W`**, asserted via the operator-level densification counter.
//!
//! This file intentionally holds a single `#[test]`: the densification
//! counter is process-global, and integration-test binaries are the one
//! place Rust guarantees a private process. Do not add other tests here
//! that touch structured operators.

use lrm::prelude::*;
use lrm::workload::generators::{WPrefix, WorkloadGenerator};
use lrm_linalg::operator::{densification_count, reset_densification_count};
use lrm_opt::{AlmSchedule, NesterovConfig};

#[test]
fn prefix_workload_at_n_4096_compiles_without_densifying() {
    let mut rng = lrm::dp::rng::derive_rng(7, 0);
    let n = 4096;
    let m = 64;
    let w = WPrefix.generate(m, n, &mut rng).unwrap();
    assert_eq!(w.structure(), WorkloadStructure::Intervals);

    // Lean fixed-iteration budgets: the point is the end-to-end code path
    // (fingerprint → SVD → Algorithm 1 → cache admission), not solver
    // convergence, and the test must stay fast at `opt-level = 2`.
    let lean_config = || DecompositionConfig {
        target_rank: TargetRank::RatioOfRank(1.2),
        gamma: 0.0,
        schedule: AlmSchedule::default(),
        max_outer_iters: 4,
        inner_alternations: 2,
        inner_tol: 0.0,
        nesterov: NesterovConfig {
            max_iters: 8,
            tol_per_entry: 0.0,
            ..NesterovConfig::default()
        },
        polish_iters: 0,
    };

    reset_densification_count();
    let engine = Engine::builder().build();
    let compiled = engine
        .compile(
            &w,
            MechanismKind::Lrm,
            &CompileOptions::with_decomposition(lean_config()),
        )
        .expect("structured LRM compile succeeds");
    assert_eq!(
        densification_count(),
        0,
        "the structured compile pipeline must never densify W"
    );

    // The compile is real: right shape, usable strategy, sane metadata.
    let meta = compiled.meta();
    assert_eq!(meta.kind, MechanismKind::Lrm);
    assert!(meta.strategy_rank.is_some());
    assert!(meta.expected_avg_error.is_finite() && meta.expected_avg_error > 0.0);
    assert_eq!(compiled.num_queries(), m);
    assert_eq!(compiled.domain_size(), n);

    // A second compile of the same workload is a pure cache hit — and the
    // row-streamed confirmation must not densify either.
    let hit = engine
        .compile(
            &w,
            MechanismKind::Lrm,
            &CompileOptions::with_decomposition(lean_config()),
        )
        .unwrap();
    assert_eq!(hit.meta().cache, CacheOutcome::MemoryHit);
    assert_eq!(
        densification_count(),
        0,
        "cache confirmation must stream rows, not densify"
    );

    // Answering goes through the decomposition factors (dense B, L — not
    // W), so it must not densify either; sanity-check accuracy at huge ε.
    let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 97) as f64).collect();
    let truth = w.answer(&x).unwrap();
    let eps = Epsilon::new(1e9).unwrap();
    let got = compiled
        .answer(&x, eps, &mut lrm::dp::rng::derive_rng(1, 1))
        .unwrap();
    assert_eq!(got.len(), m);
    // With fixed lean budgets the strategy may carry a structural
    // residual; the answers must still be in the right ballpark (the
    // exact quality gate lives in the tier-1 decomposition tests).
    let truth_norm = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
    let err_norm = got
        .iter()
        .zip(truth.iter())
        .map(|(g, t)| (g - t) * (g - t))
        .sum::<f64>()
        .sqrt();
    assert!(
        err_norm <= 0.2 * truth_norm,
        "relative answer error {} too large",
        err_norm / truth_norm
    );
    assert_eq!(densification_count(), 0);
}
