//! Property-based integration tests (proptest) on cross-crate invariants.

use lrm::core::mechanism::Mechanism;
use lrm::dp::rng::derive_rng;
use lrm::linalg::Matrix;
use lrm::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random workload matrix with entries in [-2, 2].
fn small_workload() -> impl Strategy<Value = Workload> {
    (2usize..6, 2usize..8).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-2.0f64..2.0, m * n)
            .prop_map(move |data| Workload::new(Matrix::from_vec(m, n, data).unwrap()).unwrap())
    })
}

/// Strategy: a database vector matched later to the workload's n.
fn database(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1000.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The decomposition always satisfies the Formula (7)/(8) constraints:
    /// Δ(B, L) ≤ 1, and the residual is finite.
    #[test]
    fn decomposition_feasible(w in small_workload()) {
        let d = WorkloadDecomposition::compute(&w, &DecompositionConfig::default()).unwrap();
        prop_assert!(d.sensitivity() <= 1.0 + 1e-9, "Δ = {}", d.sensitivity());
        prop_assert!(d.scale().is_finite());
        prop_assert!(d.stats().residual.is_finite());
    }

    /// LRM's Lemma 1 noise error never exceeds the Lemma 3 bound built
    /// from the workload's singular values.
    #[test]
    fn lrm_within_lemma3(w in small_workload()) {
        let d = WorkloadDecomposition::compute(&w, &DecompositionConfig::default()).unwrap();
        let svals = w.singular_values();
        if !svals.is_empty() {
            let upper = lrm::core::bounds::lemma3_upper_bound(&svals, 1.0);
            prop_assert!(
                d.expected_noise_error(1.0) <= upper * (1.0 + 1e-6),
                "noise {} vs bound {}", d.expected_noise_error(1.0), upper
            );
        }
    }

    /// All mechanisms return finite answers on arbitrary non-negative data.
    #[test]
    fn answers_always_finite(
        w in small_workload(),
        seed in 0u64..1000,
    ) {
        let n = w.domain_size();
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 97) as f64).collect();
        let eps = Epsilon::new(0.5).unwrap();
        let mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoiseOnData::compile(&w)),
            Box::new(NoiseOnResults::compile(&w)),
            Box::new(WaveletMechanism::compile(&w)),
            Box::new(HierarchicalMechanism::compile(&w)),
            Box::new(LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap()),
        ];
        for mech in mechanisms {
            let y = mech.answer(&x, eps, &mut derive_rng(seed, 0)).unwrap();
            prop_assert!(y.iter().all(|v| v.is_finite()), "{}", mech.name());
            prop_assert!(mech.expected_error(eps, Some(&x)).is_finite());
        }
    }

    /// Workload sensitivity: scaling the matrix scales Δ' linearly,
    /// and permuting rows leaves it unchanged.
    #[test]
    fn sensitivity_homogeneity(w in small_workload(), c in 0.1f64..5.0) {
        let scaled = Workload::new(w.matrix().scale(c)).unwrap();
        prop_assert!((scaled.sensitivity() - c * w.sensitivity()).abs() < 1e-9 * (1.0 + w.sensitivity()));
    }

    /// NOD and NOR expected errors follow their closed forms for every
    /// workload (cross-checks the sensitivity plumbing end to end).
    #[test]
    fn baseline_error_formulas(w in small_workload(), x in database(8)) {
        let eps = Epsilon::new(1.0).unwrap();
        let nod = NoiseOnData::compile(&w);
        prop_assert!((nod.expected_error(eps, None) - 2.0 * w.squared_sum()).abs() < 1e-9);
        let nor = NoiseOnResults::compile(&w);
        let expect = 2.0 * w.num_queries() as f64 * w.sensitivity().powi(2);
        prop_assert!((nor.expected_error(eps, None) - expect).abs() < 1e-9);
        let _ = x; // db strategy exercised elsewhere
    }

    /// The dataset merge preserves totals for arbitrary vectors and sizes.
    #[test]
    fn merge_preserves_mass(
        x in proptest::collection::vec(0.0f64..1e6, 1..200),
        frac in 0.05f64..1.0,
    ) {
        let n = ((x.len() as f64 * frac).ceil() as usize).clamp(1, x.len());
        let merged = lrm::workload::datasets::merge_to_domain(&x, n).unwrap();
        let before: f64 = x.iter().sum();
        let after: f64 = merged.iter().sum();
        prop_assert!((before - after).abs() <= 1e-6 * before.max(1.0));
        prop_assert_eq!(merged.len(), n);
    }
}
