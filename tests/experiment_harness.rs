//! End-to-end smoke tests of the experiment harness at miniature scale:
//! each figure driver runs, produces finite records, and the records
//! carry the right metadata.

use lrm::eval::experiments::{fig2, fig4, fig7, fig9, ExperimentContext};
use lrm::eval::report::CsvRecord;

/// A context small enough for CI: 2 trials, quiet, scaled-down grids.
fn tiny_ctx() -> ExperimentContext {
    ExperimentContext {
        full: false,
        trials: 2,
        seed: 7,
        csv_dir: None,
        quiet: true,
        ..ExperimentContext::default()
    }
}

fn assert_records_sane(records: &[CsvRecord], figure: &str) {
    assert!(!records.is_empty(), "{figure}: no records");
    for r in records {
        assert_eq!(r.figure, figure);
        assert!(
            r.analytic_avg_error.is_finite() && r.analytic_avg_error > 0.0,
            "{figure}: bad analytic error {} for {} at {}={}",
            r.analytic_avg_error,
            r.mechanism,
            r.x_name,
            r.x
        );
        assert!(
            r.empirical_avg_error.is_finite() && r.empirical_avg_error > 0.0,
            "{figure}: bad empirical error for {} at {}={}",
            r.mechanism,
            r.x_name,
            r.x
        );
        assert!(r.compile_seconds >= 0.0 && r.answer_seconds >= 0.0);
    }
}

// The n-sweeps are too slow for a default test run at their quick grids;
// figs 2/4 are exercised here through a stripped-down surrogate: we call
// the real drivers only for the cheap figures and rely on the unit and
// shape tests for the rest. Fig 4/7/9 quick grids complete in roughly a
// minute each in release mode; they are marked #[ignore] so `cargo test
// --workspace -- --ignored` (or the bench harness) runs them explicitly.

#[test]
#[ignore = "runs the full quick grid (~minutes); exercised via `cargo test -- --ignored`"]
fn fig4_quick_grid_runs() {
    let records = fig4::run(&tiny_ctx());
    assert_records_sane(&records, "fig4");
    // 5 mechanisms × 3 datasets × grid points, minus MM cells above cap.
    assert!(records.len() >= 4 * 3 * 4);
}

#[test]
#[ignore = "runs the full quick grid (~minutes); exercised via `cargo test -- --ignored`"]
fn fig2_quick_grid_runs() {
    let records = fig2::run(&tiny_ctx());
    assert_records_sane(&records, "fig2");
    assert_eq!(records.len(), 3 * 6 * 3); // workloads × γ × ε
}

#[test]
#[ignore = "runs the full quick grid (~minutes); exercised via `cargo test -- --ignored`"]
fn fig7_quick_grid_runs() {
    let records = fig7::run(&tiny_ctx());
    assert_records_sane(&records, "fig7");
}

#[test]
#[ignore = "runs the full quick grid (~minutes); exercised via `cargo test -- --ignored`"]
fn fig9_quick_grid_runs() {
    let records = fig9::run(&tiny_ctx());
    assert_records_sane(&records, "fig9");
    // Fig 9 shape: LRM at the lowest s-ratio beats LM; at ratio 1.0 the
    // advantage is gone.
    let lrm_low = records
        .iter()
        .find(|r| r.mechanism == "LRM" && r.x < 0.15)
        .expect("LRM cell at ratio 0.1");
    let lm_low = records
        .iter()
        .find(|r| r.mechanism == "LM" && r.x < 0.15 && r.dataset == lrm_low.dataset)
        .expect("LM cell at ratio 0.1");
    assert!(lrm_low.analytic_avg_error < lm_low.analytic_avg_error);
}
