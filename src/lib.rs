#![warn(missing_docs)]
//! # lrm — Low-Rank Mechanism for batch queries under differential privacy
//!
//! A from-scratch Rust reproduction of *“Low-Rank Mechanism: Optimizing
//! Batch Queries under Differential Privacy”* (Yuan, Zhang, Winslett, Xiao,
//! Yang, Hao — VLDB 2012), including every substrate the paper depends on:
//!
//! * [`linalg`] — dense linear algebra (GEMM, LU/Cholesky/QR, symmetric
//!   eigendecomposition, SVD);
//! * [`opt`] — L1-ball projection, Nesterov's projected gradient
//!   (paper Algorithm 2), augmented-Lagrangian scheduling (Algorithm 1),
//!   nonmonotone spectral projected gradient, log-sum-exp smoothing
//!   (Appendix B);
//! * [`dp`] — Laplace noise, sensitivity arithmetic, privacy budgets;
//! * [`workload`] — the paper's WDiscrete / WRange / WRelated workload
//!   generators plus synthetic stand-ins for the Search Logs / Net Trace /
//!   Social Network datasets;
//! * [`core`] — the Low-Rank Mechanism itself and all baselines the paper
//!   evaluates (Laplace/NOD/NOR, Matrix Mechanism, Wavelet, Hierarchical),
//!   with closed-form error analysis and the paper's optimality bounds;
//! * [`eval`] — the experiment harness that regenerates every figure of the
//!   paper's evaluation section.
//!
//! ## Quickstart
//!
//! ```
//! use lrm::prelude::*;
//! use rand::SeedableRng;
//!
//! // A workload of three correlated queries over four unit counts
//! // (the running example from Section 1 of the paper).
//! let w = Workload::from_rows(&[
//!     &[1.0, 1.0, 1.0, 1.0], // q1 = total
//!     &[1.0, 1.0, 0.0, 0.0], // q2 = NY + NJ
//!     &[0.0, 0.0, 1.0, 1.0], // q3 = CA + WA
//! ]).unwrap();
//!
//! let data = vec![82_700.0, 19_000.0, 67_000.0, 5_900.0];
//! let eps = Epsilon::new(1.0).unwrap();
//!
//! let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let noisy = mech.answer(&data, eps, &mut rng).unwrap();
//! assert_eq!(noisy.len(), 3);
//!
//! // LRM's expected error never exceeds the naive noise-on-data baseline's.
//! let nod = NoiseOnData::compile(&w);
//! assert!(mech.expected_error(eps, None) <= nod.expected_error(eps, None) * 1.01);
//! ```

pub use lrm_core as core;
pub use lrm_dp as dp;
pub use lrm_eval as eval;
pub use lrm_linalg as linalg;
pub use lrm_opt as opt;
pub use lrm_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use lrm_core::baselines::{
        HierarchicalMechanism, MatrixMechanism, NoiseOnData, NoiseOnResults, WaveletMechanism,
    };
    pub use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
    pub use lrm_core::extensions::{BestOfMechanism, CompensatedLowRankMechanism};
    pub use lrm_core::lrm::LowRankMechanism;
    pub use lrm_core::mechanism::Mechanism;
    pub use lrm_dp::budget::Epsilon;
    pub use lrm_linalg::Matrix;
    pub use lrm_workload::datasets::Dataset;
    pub use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
    pub use lrm_workload::workload::Workload;
}
