#![warn(missing_docs)]
//! # lrm — Low-Rank Mechanism for batch queries under differential privacy
//!
//! A from-scratch Rust reproduction of *“Low-Rank Mechanism: Optimizing
//! Batch Queries under Differential Privacy”* (Yuan, Zhang, Winslett, Xiao,
//! Yang, Hao — VLDB 2012), including every substrate the paper depends on:
//!
//! * [`linalg`] — dense linear algebra (GEMM, LU/Cholesky/QR, symmetric
//!   eigendecomposition, SVD);
//! * [`opt`] — L1-ball projection, Nesterov's projected gradient
//!   (paper Algorithm 2), augmented-Lagrangian scheduling (Algorithm 1),
//!   nonmonotone spectral projected gradient, log-sum-exp smoothing
//!   (Appendix B);
//! * [`dp`] — Laplace noise, sensitivity arithmetic, privacy budgets and
//!   the sequential-composition [`BudgetLedger`](lrm_dp::BudgetLedger);
//! * [`workload`] — the paper's WDiscrete / WRange / WRelated workload
//!   generators plus synthetic stand-ins for the Search Logs / Net Trace /
//!   Social Network datasets, each workload carrying a content
//!   [`Fingerprint`](lrm_workload::Fingerprint);
//! * [`core`] — the Low-Rank Mechanism itself, all baselines the paper
//!   evaluates (Laplace/NOD/NOR, Matrix Mechanism, Wavelet, Hierarchical),
//!   closed-form error analysis, the paper's optimality bounds — and the
//!   serving [`Engine`](lrm_core::engine::Engine) described below;
//! * [`eval`] — the experiment harness that regenerates every figure of the
//!   paper's evaluation section;
//! * [`server`] — the concurrent batch-serving runtime: a [`QuerySpec`]
//!   front door over a [`Schema`], a coalescing scheduler that merges
//!   compatible concurrent requests into one strategy + one noise draw,
//!   per-tenant budget ledgers, and a worker pool over the engine's
//!   strategy cache.
//!
//! [`QuerySpec`]: lrm_server::QuerySpec
//! [`Schema`]: lrm_workload::Schema
//!
//! ## Quickstart: compile once, answer many, never over-spend
//!
//! Strategy search (Algorithm 1) is the expensive, *data-independent* step;
//! answering is microseconds. The API is shaped around that: an
//! [`Engine`](lrm_core::engine::Engine) compiles a workload into a strategy
//! (cached by the workload's content fingerprint — recompiles are O(1)
//! lookups), and a [`Session`](lrm_core::engine::Session) serves releases
//! while a ledger debits every ε and refuses over-spends with a typed
//! error.
//!
//! ```
//! use lrm::prelude::*;
//! use rand::SeedableRng;
//!
//! // A workload of three correlated queries over four unit counts
//! // (the running example from Section 1 of the paper).
//! let w = Workload::from_rows(&[
//!     &[1.0, 1.0, 1.0, 1.0], // q1 = total
//!     &[1.0, 1.0, 0.0, 0.0], // q2 = NY + NJ
//!     &[0.0, 0.0, 1.0, 1.0], // q3 = CA + WA
//! ]).unwrap();
//! let data = vec![82_700.0, 19_000.0, 67_000.0, 5_900.0];
//!
//! // Compile once — data-independent, so it consumes no privacy budget.
//! let engine = Engine::builder().build();
//! let compiled = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
//! assert_eq!(compiled.meta().label, "LRM");
//!
//! // Serve releases under a tracked total of ε = 1.
//! let mut session = compiled.session(Epsilon::new(1.0).unwrap());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let half = Epsilon::new(0.5).unwrap();
//!
//! let first = session.answer(&data, half, &mut rng).unwrap();
//! assert_eq!(first.answers.len(), 3);
//! assert!((first.eps_remaining - 0.5).abs() < 1e-12);
//!
//! let second = session.answer(&data, half, &mut rng).unwrap();
//! assert!(second.eps_remaining < 1e-12);
//!
//! // A third release would exceed ε = 1: the ledger refuses, typed.
//! assert!(matches!(
//!     session.answer(&data, half, &mut rng),
//!     Err(EngineError::Budget(BudgetError::Exhausted { .. }))
//! ));
//!
//! // Recompiling the same workload is a cache hit — no decomposition.
//! let again = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
//! assert_eq!(again.meta().cache, CacheOutcome::MemoryHit);
//!
//! // Don't know which mechanism fits? Ask for the panel argmin (free:
//! // it compares closed-form errors of public quantities only).
//! let best = engine.compile_best_default(&w).unwrap();
//! let lm = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
//! assert!(best.meta().expected_avg_error <= lm.meta().expected_avg_error);
//! ```

pub use lrm_core as core;
pub use lrm_dp as dp;
pub use lrm_eval as eval;
pub use lrm_linalg as linalg;
pub use lrm_opt as opt;
pub use lrm_server as server;
pub use lrm_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use lrm_core::baselines::{
        HierarchicalMechanism, MatrixMechanism, NoiseOnData, NoiseOnResults, WaveletMechanism,
    };
    pub use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
    pub use lrm_core::engine::{
        BatchAnswer, CacheOutcome, CacheStats, CompileMeta, CompileOptions, CompiledMechanism,
        Engine, EngineBuilder, EngineError, MechanismKind, Session,
    };
    // `BestOfMechanism` is intentionally not re-exported: the prelude's
    // canonical selector is `Engine::compile_best`. The lower-level
    // already-compiled-candidates variant stays at
    // `lrm::core::extensions::BestOfMechanism`.
    pub use lrm_core::extensions::CompensatedLowRankMechanism;
    pub use lrm_core::lrm::LowRankMechanism;
    pub use lrm_core::mechanism::Mechanism;
    pub use lrm_core::CoreError;
    pub use lrm_dp::budget::Epsilon;
    pub use lrm_dp::{BudgetError, BudgetLedger, DpError, SharedLedger};
    pub use lrm_linalg::operator::{CsrOp, DenseOp, IntervalsOp, MatrixOp};
    pub use lrm_linalg::Matrix;
    pub use lrm_server::{
        AdmissionError, QuerySpec, Release, Server, ServerBuilder, ServerError, ServerReport,
        SpecError, TenantSpend, Ticket, TicketSet,
    };
    pub use lrm_workload::datasets::Dataset;
    pub use lrm_workload::error::WorkloadError;
    pub use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
    pub use lrm_workload::schema::{Attribute, Schema};
    pub use lrm_workload::workload::{Fingerprint, Workload, WorkloadStructure};
}
