//! The weighted-query scenario from Section 1 of the paper: queries with
//! non-uniform weights (e.g. population-weighted averages of per-state
//! patient counts), where neither noise-on-data nor noise-on-results is
//! optimal and the best strategy has "no simple pattern".
//!
//! ```sh
//! cargo run --release --example medical_counts
//! ```

use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    // Section 1, second example (unit counts: NY, NJ, CA, WA):
    //   q1 = 2·NJ + CA + WA
    //   q2 = NJ + 2·WA
    //   q3 = NY + 2·CA + 2·WA
    // NOQ has sensitivity 5; NOD answers with SSE 40/ε²; the paper's
    // hand-crafted optimal strategy achieves 39/ε².
    let workload = Workload::from_rows(&[
        //  NY   NJ   CA   WA
        &[0.0, 2.0, 1.0, 1.0],
        &[0.0, 1.0, 0.0, 2.0],
        &[1.0, 0.0, 2.0, 2.0],
    ])
    .expect("valid workload");

    let data = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
    let eps = Epsilon::new(0.5).expect("positive budget");

    let engine = Engine::builder().reference_epsilon(eps).build();
    let nor = engine
        .compile_default(&workload, MechanismKind::Nor)
        .expect("baselines compile");
    let nod = engine
        .compile_default(&workload, MechanismKind::Nod)
        .expect("baselines compile");
    let lrm = engine
        .compile_default(&workload, MechanismKind::Lrm)
        .expect("decomposition succeeds");

    println!(
        "NOQ sensitivity Δ' = {} (the paper derives 5)\n",
        workload.sensitivity()
    );
    println!("expected total squared error at {eps}:");
    let scale = eps.value() * eps.value(); // report in units of 1/ε²
    println!(
        "  noise on results: {:>7.1}/ε²",
        nor.expected_error(eps, Some(&data)) * scale
    );
    println!(
        "  noise on data:    {:>7.1}/ε²   (paper: 40/ε²)",
        nod.expected_error(eps, Some(&data)) * scale
    );
    println!(
        "  low-rank:         {:>7.1}/ε²   (paper's hand-crafted optimum: 39/ε²)\n",
        lrm.expected_error(eps, Some(&data)) * scale
    );

    // Average absolute deviation over repeated releases, each debited from
    // one ledger: 200 releases at ε = 0.5 compose to a total of ε = 100.
    let trials: usize = 200;
    let total = Epsilon::new(eps.value() * trials as f64).expect("positive");
    let mut session = lrm.session(total);
    let exact = workload.answer(&data).expect("shapes match");
    let mut mean_abs = vec![0.0; exact.len()];
    for t in 0..trials as u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + t);
        let release = session
            .answer(&data, eps, &mut rng)
            .expect("ledger covers all trials");
        for (acc, (a, b)) in mean_abs
            .iter_mut()
            .zip(release.answers.iter().zip(exact.iter()))
        {
            *acc += (a - b).abs() / trials as f64;
        }
    }
    println!(
        "mean |error| per query over {trials} LRM releases ({}):",
        session.ledger()
    );
    for (i, err) in mean_abs.iter().enumerate() {
        println!("  q{}: {err:.2}", i + 1);
    }
}
