//! Quickstart: compile a small batch of correlated linear queries once,
//! then serve noisy releases through a budget-tracked session, comparing
//! the Low-Rank Mechanism against the naive baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    // The running example from Section 1 of the paper: unit counts are
    // HIV+ patients per state, and the analyst asks three correlated
    // queries: q1 = the total over four states, q2 = NY + NJ,
    // q3 = CA + WA. Note q1 = q2 + q3.
    let workload = Workload::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0], // q1
        &[1.0, 1.0, 0.0, 0.0], // q2
        &[0.0, 0.0, 1.0, 1.0], // q3
    ])
    .expect("valid workload");

    //            NY        NJ        CA        WA
    let data = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
    let eps = Epsilon::new(1.0).expect("positive budget");

    // One engine per process: it owns the compiled-strategy cache.
    // Compilation is data-independent, so it consumes no privacy budget.
    let engine = Engine::builder().reference_epsilon(eps).build();
    let lrm = engine
        .compile_default(&workload, MechanismKind::Lrm)
        .expect("decomposition succeeds");
    let nod = engine
        .compile_default(&workload, MechanismKind::Nod)
        .expect("baselines always compile");
    let nor = engine
        .compile_default(&workload, MechanismKind::Nor)
        .expect("baselines always compile");

    println!(
        "workload: m = {} queries over n = {} unit counts, rank(W) = {}, fingerprint {}",
        workload.num_queries(),
        workload.domain_size(),
        workload.rank(),
        workload.fingerprint()
    );
    println!(
        "compiled {} in {:.3}s: strategy rank r = {}, cache: {:?}\n",
        lrm.meta().label,
        lrm.meta().compile_seconds,
        lrm.meta()
            .strategy_rank
            .expect("LRM is decomposition-backed"),
        lrm.meta().cache
    );

    println!("expected avg squared error per query at {eps}:");
    for compiled in [&nor, &nod, &lrm] {
        println!(
            "  {:<4} {:>10.2}",
            compiled.meta().label,
            compiled.meta().expected_avg_error
        );
    }

    // Recompiling the same workload is an O(1) cache hit — no
    // decomposition work at all.
    let again = engine
        .compile_default(&workload, MechanismKind::Lrm)
        .expect("cached");
    println!(
        "\nrecompile of the same workload: cache {:?} ({:.1e}s)\n",
        again.meta().cache,
        again.meta().compile_seconds
    );

    // Serve one noisy release under a tracked total budget. Answers stay
    // close to the truth at ε = 1 because the counts are large — that's
    // the point of DP calibration.
    let mut session = lrm.session(eps);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2012);
    let release = session
        .answer(&data, eps, &mut rng)
        .expect("budget covers one release");
    let exact = workload.answer(&data).expect("shapes match");

    println!("{:<28}{:>12}{:>14}", "query", "exact", "LRM (one run)");
    for (name, (e, n)) in ["q1 = NY+NJ+CA+WA", "q2 = NY+NJ", "q3 = CA+WA"]
        .iter()
        .zip(exact.iter().zip(release.answers.iter()))
    {
        println!("{name:<28}{e:>12.0}{n:>14.1}");
    }
    println!(
        "\nledger after the release: spent ε={:.2}, remaining ε={:.2}",
        session.ledger().spent(),
        release.eps_remaining
    );

    // The session refuses to over-spend: a second full-ε release fails
    // with a typed error instead of silently degrading the guarantee.
    match session.answer(&data, eps, &mut rng) {
        Err(EngineError::Budget(BudgetError::Exhausted {
            requested,
            remaining,
        })) => println!("second release refused: requested ε={requested}, remaining ε={remaining}"),
        other => unreachable!("expected budget exhaustion, got {other:?}"),
    }
}
