//! Quickstart: answer a small batch of correlated linear queries under
//! ε-differential privacy with the Low-Rank Mechanism, and compare its
//! expected error against the naive baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    // The running example from Section 1 of the paper: unit counts are
    // HIV+ patients per state, and the analyst asks three correlated
    // queries: q1 = the total over four states, q2 = NY + NJ,
    // q3 = CA + WA. Note q1 = q2 + q3.
    let workload = Workload::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0], // q1
        &[1.0, 1.0, 0.0, 0.0], // q2
        &[0.0, 0.0, 1.0, 1.0], // q3
    ])
    .expect("valid workload");

    //            NY        NJ        CA        WA
    let data = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
    let eps = Epsilon::new(1.0).expect("positive budget");

    // Compile each mechanism once (the strategy search is
    // data-independent, so this consumes no privacy budget).
    let lrm = LowRankMechanism::compile(&workload, &DecompositionConfig::default())
        .expect("decomposition succeeds");
    let nod = NoiseOnData::compile(&workload);
    let nor = NoiseOnResults::compile(&workload);

    println!(
        "workload: m = {} queries over n = {} unit counts, rank(W) = {}",
        workload.num_queries(),
        workload.domain_size(),
        workload.rank()
    );
    println!(
        "decomposition: r = {}, Φ(B,L) = {:.3}, Δ(B,L) = {:.3}, ‖W−BL‖_F = {:.2e}\n",
        lrm.decomposition().rank(),
        lrm.decomposition().scale(),
        lrm.decomposition().sensitivity(),
        lrm.decomposition().stats().residual
    );

    println!("expected total squared error at {eps}:");
    println!(
        "  noise on results (Eq. 5): {:>8.1}",
        nor.expected_error(eps, Some(&data))
    );
    println!(
        "  noise on data    (Eq. 4): {:>8.1}",
        nod.expected_error(eps, Some(&data))
    );
    println!(
        "  low-rank mechanism (Eq. 6): {:>6.1}\n",
        lrm.expected_error(eps, Some(&data))
    );

    // One noisy release. Answers remain close to the truth at ε = 1
    // because the counts are large — that's the point of DP calibration.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2012);
    let noisy = lrm.answer(&data, eps, &mut rng).expect("answer succeeds");
    let exact = workload.answer(&data).expect("shapes match");
    println!("{:<28}{:>12}{:>14}", "query", "exact", "LRM (one run)");
    for (name, (e, n)) in ["q1 = NY+NJ+CA+WA", "q2 = NY+NJ", "q3 = CA+WA"]
        .iter()
        .zip(exact.iter().zip(noisy.iter()))
    {
        println!("{name:<28}{e:>12.0}{n:>14.1}");
    }
}
