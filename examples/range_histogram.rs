//! Range-count queries over a histogram — the WRange scenario of the
//! paper's evaluation. Compares LRM against the mechanisms purpose-built
//! for ranges (Wavelet/Privelet and the hierarchical tree) on a synthetic
//! Search-Logs-style dataset.
//!
//! ```sh
//! cargo run --release --example range_histogram
//! ```

use lrm::core::mechanism::Mechanism as _;
use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let n = 256; // histogram buckets
    let m = 48; // random range queries
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let workload = WRange.generate(m, n, &mut rng).expect("valid dims");

    // The synthetic Search Logs time series, merged down to n buckets the
    // way the paper preprocesses its datasets.
    let data = Dataset::SearchLogs
        .load_merged(n)
        .expect("n below dataset size");

    let eps = Epsilon::new(0.1).expect("positive budget");

    let lrm = LowRankMechanism::compile(&workload, &DecompositionConfig::default())
        .expect("decomposition succeeds");
    let lm = NoiseOnData::compile(&workload);
    let wm = WaveletMechanism::compile(&workload);
    let hm = HierarchicalMechanism::compile(&workload);

    println!(
        "m = {m} random range queries over n = {n} buckets; rank(W) = {}\n",
        workload.rank()
    );
    println!("expected avg squared error per query at {eps}:");
    for (name, err) in [
        (
            "LM (noise on data)",
            lm.expected_average_error(eps, Some(&data)),
        ),
        ("WM (Privelet)", wm.expected_average_error(eps, Some(&data))),
        (
            "HM (Hay et al.)",
            hm.expected_average_error(eps, Some(&data)),
        ),
        (
            "LRM (this paper)",
            lrm.expected_average_error(eps, Some(&data)),
        ),
    ] {
        println!("  {name:<22}{err:>14.0}");
    }

    // A concrete range query released by each mechanism.
    let truth = workload.answer(&data).expect("shapes match");
    println!("\nfirst three queries, one noisy release each:");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}",
        "query", "exact", "LM", "WM", "LRM"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let lm_ans = lm.answer(&data, eps, &mut rng).expect("answers");
    let wm_ans = wm.answer(&data, eps, &mut rng).expect("answers");
    let lrm_ans = lrm.answer(&data, eps, &mut rng).expect("answers");
    for i in 0..3 {
        println!(
            "q{:<9}{:>12.0}{:>12.0}{:>12.0}{:>12.0}",
            i + 1,
            truth[i],
            lm_ans[i],
            wm_ans[i],
            lrm_ans[i]
        );
    }
}
