//! Range-count queries over a histogram — the WRange scenario of the
//! paper's evaluation. Compares LRM against the mechanisms purpose-built
//! for ranges (Wavelet/Privelet and the hierarchical tree) on a synthetic
//! Search-Logs-style dataset, with one budget-tracked session per
//! mechanism for the sample releases.
//!
//! ```sh
//! cargo run --release --example range_histogram
//! ```

use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let n = 256; // histogram buckets
    let m = 48; // random range queries
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let workload = WRange.generate(m, n, &mut rng).expect("valid dims");

    // The synthetic Search Logs time series, merged down to n buckets the
    // way the paper preprocesses its datasets.
    let data = Dataset::SearchLogs
        .load_merged(n)
        .expect("n below dataset size");

    let eps = Epsilon::new(0.1).expect("positive budget");
    let engine = Engine::builder().reference_epsilon(eps).build();

    let contenders = [
        ("LM (noise on data)", MechanismKind::Laplace),
        ("WM (Privelet)", MechanismKind::Wavelet),
        ("HM (Hay et al.)", MechanismKind::Hierarchical),
        ("LRM (this paper)", MechanismKind::Lrm),
    ];
    let compiled: Vec<(&str, CompiledMechanism)> = contenders
        .iter()
        .map(|&(name, kind)| {
            (
                name,
                engine
                    .compile_default(&workload, kind)
                    .expect("compiles at this size"),
            )
        })
        .collect();

    println!(
        "m = {m} random range queries over n = {n} buckets; rank(W) = {}\n",
        workload.rank()
    );
    println!("expected avg squared error per query at {eps}:");
    for (name, mech) in &compiled {
        println!(
            "  {name:<22}{:>14.0}",
            mech.expected_average_error(eps, Some(&data))
        );
    }

    // A concrete range query released by each mechanism, each from its own
    // session (independent ledgers — these are separate deployments).
    let truth = workload.answer(&data).expect("shapes match");
    println!("\nfirst three queries, one noisy release each:");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}",
        "query", "exact", "LM", "WM", "LRM"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut release_of = |kind_index: usize| {
        let (_, mech) = &compiled[kind_index];
        mech.session(eps)
            .answer(&data, eps, &mut rng)
            .expect("one release fits the budget")
            .answers
    };
    let lm_ans = release_of(0);
    let wm_ans = release_of(1);
    let lrm_ans = release_of(3);
    for i in 0..3 {
        println!(
            "q{:<9}{:>12.0}{:>12.0}{:>12.0}{:>12.0}",
            i + 1,
            truth[i],
            lm_ans[i],
            wm_ans[i],
            lrm_ans[i]
        );
    }
}
