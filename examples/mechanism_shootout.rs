//! Head-to-head of every mechanism in the registry (including the Matrix
//! Mechanism of Appendix B) on one workload of each family, reproducing
//! the qualitative ordering of the paper's Figs. 4–6 at desk scale — all
//! through one engine dispatch instead of per-type constructors.
//!
//! ```sh
//! cargo run --release --example mechanism_shootout
//! ```

use lrm::prelude::*;
use rand::SeedableRng;

const CONTENDERS: [MechanismKind; 5] = [
    MechanismKind::MatrixMechanism,
    MechanismKind::Laplace,
    MechanismKind::Wavelet,
    MechanismKind::Hierarchical,
    MechanismKind::Lrm,
];

fn main() {
    let (m, n) = (32, 64);
    let eps = Epsilon::new(0.1).expect("positive budget");
    let data = Dataset::SocialNetwork
        .load_merged(n)
        .expect("n below dataset size");
    let engine = Engine::builder().reference_epsilon(eps).build();

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let families: Vec<(&str, Workload)> = vec![
        (
            "WDiscrete",
            WDiscrete::default().generate(m, n, &mut rng).expect("dims"),
        ),
        ("WRange", WRange.generate(m, n, &mut rng).expect("dims")),
        (
            "WRelated(s=6)",
            WRelated { base_queries: 6 }
                .generate(m, n, &mut rng)
                .expect("dims"),
        ),
    ];

    println!("m = {m}, n = {n}, {eps}; expected avg squared error per query\n");
    print!("{:<15}", "workload");
    for kind in CONTENDERS {
        print!("{:>12}", kind.label());
    }
    println!();
    for (name, w) in &families {
        print!("{name:<15}");
        for kind in CONTENDERS {
            let compiled = engine
                .compile_default(w, kind)
                .expect("all contenders compile at this size");
            print!(
                "{:>12.0}",
                compiled.expected_average_error(eps, Some(&data))
            );
        }
        println!();
    }
    println!(
        "\nExpected shape (paper Figs. 4–6): MM worst by ~an order of magnitude;\n\
         WM/HM competitive on WRange; LRM lowest, especially on WRelated."
    );

    let stats = engine.cache_stats();
    println!(
        "\nstrategy cache: {} compiles, {} memory hits ({} strategies resident)",
        stats.misses, stats.memory_hits, stats.entries
    );
}
