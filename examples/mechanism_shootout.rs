//! Head-to-head of every mechanism in this crate (including the Matrix
//! Mechanism of Appendix B) on one workload of each family, reproducing
//! the qualitative ordering of the paper's Figs. 4–6 at desk scale.
//!
//! ```sh
//! cargo run --release --example mechanism_shootout
//! ```

use lrm::core::baselines::{MatrixMechanism, MatrixMechanismConfig};
use lrm::core::mechanism::Mechanism;
use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let (m, n) = (32, 64);
    let eps = Epsilon::new(0.1).expect("positive budget");
    let data = Dataset::SocialNetwork
        .load_merged(n)
        .expect("n below dataset size");

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let families: Vec<(&str, Workload)> = vec![
        (
            "WDiscrete",
            WDiscrete::default().generate(m, n, &mut rng).expect("dims"),
        ),
        ("WRange", WRange.generate(m, n, &mut rng).expect("dims")),
        (
            "WRelated(s=6)",
            WRelated { base_queries: 6 }
                .generate(m, n, &mut rng)
                .expect("dims"),
        ),
    ];

    println!("m = {m}, n = {n}, {eps}; expected avg squared error per query\n");
    println!(
        "{:<15}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "workload", "MM", "LM", "WM", "HM", "LRM"
    );
    for (name, w) in &families {
        let mm = MatrixMechanism::compile(w, &MatrixMechanismConfig::default())
            .expect("MM compiles at this size");
        let lm = NoiseOnData::compile(w);
        let wm = WaveletMechanism::compile(w);
        let hm = HierarchicalMechanism::compile(w);
        let lrm = LowRankMechanism::compile(w, &DecompositionConfig::default())
            .expect("decomposition succeeds");
        println!(
            "{:<15}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>12.0}",
            name,
            mm.expected_average_error(eps, Some(&data)),
            lm.expected_average_error(eps, Some(&data)),
            wm.expected_average_error(eps, Some(&data)),
            hm.expected_average_error(eps, Some(&data)),
            lrm.expected_average_error(eps, Some(&data)),
        );
    }
    println!(
        "\nExpected shape (paper Figs. 4–6): MM worst by ~an order of magnitude;\n\
         WM/HM competitive on WRange; LRM lowest, especially on WRelated."
    );
}
