//! The WRelated scenario: a large batch of queries that are linear
//! combinations of a few "base" queries — the low-rank regime where LRM's
//! advantage is largest (Figs. 6, 8, 9 of the paper). Think: hundreds of
//! dashboards all derived from a handful of underlying aggregates.
//!
//! Also demonstrates the compiled-strategy cache's disk spill: a second
//! engine pointed at the same directory skips Algorithm 1 entirely.
//!
//! ```sh
//! cargo run --release --example related_workload
//! ```

use lrm::core::bounds;
use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let (m, n, s) = (96, 512, 8); // 96 queries, all mixes of 8 base queries
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let workload = WRelated { base_queries: s }
        .generate(m, n, &mut rng)
        .expect("valid dims");
    let data = Dataset::NetTrace
        .load_merged(n)
        .expect("n below dataset size");
    let eps = Epsilon::new(0.1).expect("positive budget");

    println!(
        "m = {m} queries over n = {n} counts; true rank(W) = {} (s = {s})\n",
        workload.rank()
    );

    let spill = std::env::temp_dir().join("lrm_example_spill");
    let engine = Engine::builder()
        .reference_epsilon(eps)
        .spill_dir(&spill)
        .build();

    let lrm = engine
        .compile_default(&workload, MechanismKind::Lrm)
        .expect("decomposition succeeds");
    println!(
        "compiled LRM in {:.2}s (cache: {:?}, strategy rank r = {})",
        lrm.meta().compile_seconds,
        lrm.meta().cache,
        lrm.meta().strategy_rank.expect("decomposition-backed")
    );

    // A fresh engine over the same spill dir: no decomposition work, just
    // a load-and-revalidate of the spilled (B, L) factors.
    let warm = Engine::builder()
        .reference_epsilon(eps)
        .spill_dir(&spill)
        .build();
    let reloaded = warm
        .compile_default(&workload, MechanismKind::Lrm)
        .expect("spilled strategy loads");
    println!(
        "second engine, same spill dir: cache {:?} in {:.3}s\n",
        reloaded.meta().cache,
        reloaded.meta().compile_seconds
    );

    println!("expected avg squared error per query at {eps}:");
    let lrm_err = lrm.expected_average_error(eps, Some(&data));
    for kind in [
        MechanismKind::Laplace,
        MechanismKind::Wavelet,
        MechanismKind::Hierarchical,
        MechanismKind::Lrm,
    ] {
        let err = engine
            .compile_default(&workload, kind)
            .expect("compiles at this size")
            .expected_average_error(eps, Some(&data));
        println!(
            "  {:<5}{err:>16.0}   ({:>6.1}x LRM)",
            kind.label(),
            err / lrm_err
        );
    }

    // The optimality context of Section 4.1: LRM's analytic error vs the
    // Lemma 3 feasible-construction bound.
    let svals = workload.singular_values();
    let upper = bounds::lemma3_upper_bound(&svals, eps.value());
    println!(
        "\nLemma 3 upper bound (SVD construction): {:.3e}",
        upper / m as f64
    );
    println!(
        "LRM analytic error:                     {:.3e}  (optimizer improves on the construction {:.1}x)",
        lrm.expected_error(eps, None) / m as f64,
        upper / lrm.expected_error(eps, None)
    );
    if let Some(ratio) = bounds::theorem2_ratio(&svals) {
        println!("Theorem 2 approximation factor (C/4)²·r: {ratio:.1}");
    }

    let _ = std::fs::remove_dir_all(spill);
}
