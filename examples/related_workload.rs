//! The WRelated scenario: a large batch of queries that are linear
//! combinations of a few "base" queries — the low-rank regime where LRM's
//! advantage is largest (Figs. 6, 8, 9 of the paper). Think: hundreds of
//! dashboards all derived from a handful of underlying aggregates.
//!
//! ```sh
//! cargo run --release --example related_workload
//! ```

use lrm::core::bounds;
use lrm::core::mechanism::Mechanism as _;
use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let (m, n, s) = (96, 512, 8); // 96 queries, all mixes of 8 base queries
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let workload = WRelated { base_queries: s }
        .generate(m, n, &mut rng)
        .expect("valid dims");
    let data = Dataset::NetTrace
        .load_merged(n)
        .expect("n below dataset size");
    let eps = Epsilon::new(0.1).expect("positive budget");

    println!(
        "m = {m} queries over n = {n} counts; true rank(W) = {} (s = {s})\n",
        workload.rank()
    );

    let lrm = LowRankMechanism::compile(&workload, &DecompositionConfig::default())
        .expect("decomposition succeeds");
    let lm = NoiseOnData::compile(&workload);
    let wm = WaveletMechanism::compile(&workload);
    let hm = HierarchicalMechanism::compile(&workload);

    println!("expected avg squared error per query at {eps}:");
    let lrm_err = lrm.expected_average_error(eps, Some(&data));
    for (name, err) in [
        ("LM", lm.expected_average_error(eps, Some(&data))),
        ("WM", wm.expected_average_error(eps, Some(&data))),
        ("HM", hm.expected_average_error(eps, Some(&data))),
        ("LRM", lrm_err),
    ] {
        println!("  {name:<5}{err:>16.0}   ({:>6.1}x LRM)", err / lrm_err);
    }

    // The optimality context of Section 4.1: LRM's analytic error vs the
    // Lemma 3 feasible-construction bound.
    let svals = workload.singular_values();
    let upper = bounds::lemma3_upper_bound(&svals, eps.value());
    println!(
        "\nLemma 3 upper bound (SVD construction): {:.3e}",
        upper / m as f64
    );
    println!(
        "LRM analytic error:                     {:.3e}  (optimizer improves on the construction {:.1}x)",
        lrm.expected_error(eps, None) / m as f64,
        upper / lrm.expected_error(eps, None)
    );
    if let Some(ratio) = bounds::theorem2_ratio(&svals) {
        println!("Theorem 2 approximation factor (C/4)²·r: {ratio:.1}");
    }
}
