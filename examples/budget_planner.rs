//! Mechanism selection and residual compensation — the extension layer on
//! top of the paper (DESIGN.md §8): given a workload, pick the best
//! strategy by closed-form error (free: it only reads public data), and
//! show how the compensated LRM removes the relaxed decomposition's bias
//! on large-count databases.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

use lrm::core::decomposition::TargetRank;
use lrm::core::mechanism::Mechanism;
use lrm::prelude::*;
use rand::SeedableRng;

fn candidates(w: &Workload) -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(NoiseOnData::compile(w)),
        Box::new(NoiseOnResults::compile(w)),
        Box::new(WaveletMechanism::compile(w)),
        Box::new(HierarchicalMechanism::compile(w)),
        Box::new(
            LowRankMechanism::compile(w, &DecompositionConfig::default())
                .expect("decomposition succeeds"),
        ),
    ]
}

fn main() {
    let eps = Epsilon::new(0.1).expect("positive budget");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    println!("-- automatic mechanism selection (no privacy cost) --\n");
    let cases: Vec<(&str, Workload)> = vec![
        (
            "small dense (WDiscrete 16x24)",
            WDiscrete::default()
                .generate(16, 24, &mut rng)
                .expect("dims"),
        ),
        (
            "large ranges (WRange 24x512)",
            WRange.generate(24, 512, &mut rng).expect("dims"),
        ),
        (
            "low rank (WRelated s=4, 32x64)",
            WRelated { base_queries: 4 }
                .generate(32, 64, &mut rng)
                .expect("dims"),
        ),
    ];
    for (name, w) in &cases {
        let best = BestOfMechanism::choose(candidates(w), eps, None).expect("candidates agree");
        println!(
            "  {name:<32} -> {:<4} (expected batch error {:.3e})",
            best.chosen_name(),
            best.expected_error(eps, None)
        );
    }

    println!("\n-- residual compensation (paper §7 future work) --\n");
    // An undersized decomposition (r < rank) cannot match W exactly; on a
    // large-count database the leftover bias dominates plain LRM.
    let w = WRange.generate(16, 48, &mut rng).expect("dims");
    let cfg = DecompositionConfig {
        target_rank: TargetRank::Exact(6), // rank(W) is ~16
        polish_iters: 0,
        max_outer_iters: 15,
        ..DecompositionConfig::default()
    };
    let plain = LowRankMechanism::compile(&w, &cfg).expect("decomposition succeeds");
    let comp = CompensatedLowRankMechanism::from_decomposition(
        plain.decomposition().clone(),
        w.num_queries(),
        w.domain_size(),
    );
    let x: Vec<f64> = (0..48)
        .map(|i| 50_000.0 + (i * 997 % 5_000) as f64)
        .collect();
    println!(
        "  undersized decomposition: residual ‖W−BL‖_F = {:.3}",
        plain.decomposition().stats().residual
    );
    println!(
        "  plain LRM expected error:        {:.3e}  (structural bias dominates)",
        plain.expected_error(eps, Some(&x))
    );
    println!(
        "  compensated LRM expected error:  {:.3e}  (unbiased; ε split {:.0}%/{:.0}%)",
        comp.expected_error(eps, Some(&x)),
        100.0 * comp.lrm_fraction(),
        100.0 * (1.0 - comp.lrm_fraction())
    );
}
