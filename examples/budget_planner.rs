//! Mechanism selection and budget planning through the engine: pick the
//! best strategy per workload by closed-form error (free: it only reads
//! public data), then serve a release schedule under a tracked ledger —
//! including the typed refusal when the plan over-spends.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

use lrm::core::decomposition::TargetRank;
use lrm::prelude::*;
use rand::SeedableRng;

fn main() {
    let eps = Epsilon::new(0.1).expect("positive budget");
    let engine = Engine::builder().reference_epsilon(eps).build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    println!("-- automatic mechanism selection (no privacy cost) --\n");
    let cases: Vec<(&str, Workload)> = vec![
        (
            "small dense (WDiscrete 16x24)",
            WDiscrete::default()
                .generate(16, 24, &mut rng)
                .expect("dims"),
        ),
        (
            "large ranges (WRange 24x512)",
            WRange.generate(24, 512, &mut rng).expect("dims"),
        ),
        (
            "low rank (WRelated s=4, 32x64)",
            WRelated { base_queries: 4 }
                .generate(32, 64, &mut rng)
                .expect("dims"),
        ),
    ];
    for (name, w) in &cases {
        let best = engine.compile_best_default(w).expect("panel compiles");
        println!(
            "  {name:<32} -> {:<4} (expected avg error {:.3e}, compiled in {:.2}s)",
            best.meta().label,
            best.meta().expected_avg_error,
            best.meta().compile_seconds
        );
    }

    println!("\n-- a release schedule under one ledger --\n");
    // Plan: four weekly releases at ε/4 each out of a total ε = 0.1.
    let (_, w) = &cases[2];
    let data: Vec<f64> = (0..w.domain_size())
        .map(|i| 50_000.0 + (i * 997 % 5_000) as f64)
        .collect();
    let best = engine.compile_best_default(w).expect("panel compiles");
    let mut session = best.session(eps);
    let weekly = eps.split(4).expect("4 > 0");
    for week in 1..=4 {
        let release = session
            .answer(&data, weekly, &mut rng)
            .expect("the schedule fits the ledger");
        println!(
            "  week {week}: {} answered {} queries at ε={:.3}; remaining ε={:.3}",
            release.mechanism,
            release.answers.len(),
            release.eps_spent.value(),
            release.eps_remaining
        );
    }
    // A fifth release would break the advertised guarantee — the ledger
    // says no, with a typed error (not a silent over-spend).
    match session.answer(&data, weekly, &mut rng) {
        Err(EngineError::Budget(BudgetError::Exhausted {
            requested,
            remaining,
        })) => println!("  week 5 refused: requested ε={requested:.3}, remaining ε={remaining:.3}"),
        other => unreachable!("expected exhaustion, got {other:?}"),
    }

    println!("\n-- residual compensation (paper §7 future work) --\n");
    // An undersized decomposition (r < rank) cannot match W exactly; on a
    // large-count database the leftover bias dominates plain LRM. The
    // DataAware kind spends part of ε answering the residual, removing
    // the bias.
    let w = WRange.generate(16, 48, &mut rng).expect("dims");
    let undersized = CompileOptions::with_decomposition(DecompositionConfig {
        target_rank: TargetRank::Exact(6), // rank(W) is ~16
        polish_iters: 0,
        max_outer_iters: 15,
        ..DecompositionConfig::default()
    });
    let plain = engine
        .compile(&w, MechanismKind::Lrm, &undersized)
        .expect("decomposition succeeds");
    let compensated = engine
        .compile(&w, MechanismKind::DataAware, &undersized)
        .expect("decomposition succeeds");
    let x: Vec<f64> = (0..48)
        .map(|i| 50_000.0 + (i * 997 % 5_000) as f64)
        .collect();
    println!(
        "  plain {} expected error:        {:.3e}  (structural bias dominates)",
        plain.meta().label,
        plain.expected_error(eps, Some(&x))
    );
    println!(
        "  compensated {} expected error: {:.3e}  (unbiased)",
        compensated.meta().label,
        compensated.expected_error(eps, Some(&x))
    );
}
