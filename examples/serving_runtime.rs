//! The serving runtime end to end: a medical-records curator serves two
//! analyst tenants concurrently. Compatible requests arriving together
//! coalesce into one batch — one compiled strategy, one noise draw per
//! strategy column — each tenant gets the slice of the batch answer its
//! spec asked for, and every release is debited from that tenant's own
//! ledger (over-spends are typed refusals, never silent).
//!
//! ```sh
//! cargo run --release --example serving_runtime
//! ```

use lrm::prelude::*;
use std::time::Duration;

fn main() {
    // The private database: an age histogram with 5-year buckets.
    let schema = Schema::single(Attribute::new("age", 0.0, 120.0, 24).expect("valid attribute"));
    let data: Vec<f64> = (0..24)
        .map(|i| 1_000.0 + 750.0 * ((i as f64) * 0.7).sin().abs())
        .collect();

    let server = Server::builder(schema, data)
        .mechanism(MechanismKind::Lrm)
        // Wide enough that the back-to-back submissions below reliably
        // coalesce (the batch actually closes on max_batch, not the
        // window); a lone spec waits this long before falling through.
        .coalesce_window(Duration::from_millis(300))
        .max_batch(2)
        .workers(2)
        .seed(7)
        .build()
        .expect("valid server configuration");
    server.register_tenant("epidemiology", Epsilon::new(1.0).expect("ε"));
    server.register_tenant("actuarial", Epsilon::new(0.5).expect("ε"));

    let eps = Epsilon::new(0.25).expect("ε");
    let (outcomes, report) = server.serve(|client| {
        // Two compatible specs submitted back to back: they share a batch.
        let epi = client
            .submit(
                "epidemiology",
                &QuerySpec::Ranges {
                    attr: 0,
                    ranges: vec![(0.0, 20.0), (20.0, 65.0), (65.0, 120.0)],
                },
                eps,
            )
            .expect("valid spec");
        let act = client
            .submit(
                "actuarial",
                &QuerySpec::Prefixes {
                    attr: 0,
                    thresholds: vec![30.0, 60.0, 90.0],
                },
                eps,
            )
            .expect("valid spec");
        let epi = epi.wait().expect("granted");
        let act = act.wait().expect("granted");

        // An unknown tenant is refused synchronously, typed.
        let ghost = client.submit("ghost", &QuerySpec::Total, eps);
        assert!(matches!(ghost, Err(ServerError::Admission(_))));

        // Spend the actuarial tenant to exhaustion: the refusal is a
        // typed budget error, not a silent over-spend.
        let second = client
            .submit("actuarial", &QuerySpec::Total, eps)
            .expect("valid spec")
            .wait()
            .expect("second release fits the budget");
        let refused = client
            .submit("actuarial", &QuerySpec::Total, eps)
            .expect("valid spec")
            .wait();
        assert!(matches!(
            refused,
            Err(ServerError::Admission(AdmissionError::Budget(_)))
        ));
        (epi, act, second)
    });

    let (epi, act, second) = outcomes;
    println!("-- coalesced batch --\n");
    println!(
        "epidemiology ranges  : {:>9.1?}  (batch {}, {} members, ε left {:.2})",
        epi.answers, epi.batch_index, epi.batch_size, epi.eps_remaining
    );
    println!(
        "actuarial prefixes   : {:>9.1?}  (batch {}, {} members, ε left {:.2})",
        act.answers, act.batch_index, act.batch_size, act.eps_remaining
    );
    assert!(epi.coalesced() && act.coalesced());
    assert_eq!(epi.batch_index, act.batch_index);
    println!(
        "actuarial total      : {:>9.1?}  (single fallthrough, ε left {:.2})",
        second.answers, second.eps_remaining
    );

    println!("\n-- run report --\n");
    let m = &report.metrics;
    println!(
        "submitted {} | answered {} | refused {} (admission) + {} (settlement)",
        m.submitted, m.answered, m.rejected_admission, m.rejected_settlement
    );
    println!(
        "batches {} ({} coalesced, mean occupancy {:.1}) | cache {} miss / {} hit",
        m.batches,
        m.coalesced_batches,
        m.mean_occupancy,
        report.cache.misses,
        report.cache.memory_hits
    );
    println!(
        "latency p50 {:.1} ms, p99 {:.1} ms",
        m.p50_latency.as_secs_f64() * 1e3,
        m.p99_latency.as_secs_f64() * 1e3
    );
    for t in &report.tenants {
        println!(
            "tenant {:>13}: spent ε {:.2}/{:.2} over {} release(s)",
            t.tenant, t.spent, t.total, t.releases
        );
    }
}
